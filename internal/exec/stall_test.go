package exec

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestCancelledRunCarriesStallDiagnostic: a mid-run cancellation surfaces
// as a StallError naming the lane/op position where the run unwound, while
// errors.Is(err, context.Canceled) keeps matching for the cause taxonomy.
func TestCancelledRunCarriesStallDiagnostic(t *testing.T) {
	plan, feeds := heavyChain(t, 120, 256)
	for attempt := 0; attempt < 25; attempt++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(500 * time.Microsecond)
			cancel()
		}()
		_, _, err := plan.Execute(ctx, feeds, nil)
		cancel()
		if err == nil {
			continue // run beat the cancel; try again
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled run returned %v, want a context.Canceled chain", err)
		}
		var se *StallError
		if !errors.As(err, &se) {
			// The cancel can land in the window after every op finished but
			// before the final commit — no lane is stuck then. Retry.
			continue
		}
		if len(se.Stuck) == 0 {
			t.Fatal("StallError with an empty stuck list")
		}
		s := se.Stuck[0]
		if s.Op == "" || s.Node == "" || s.Total == 0 || s.Done >= s.Total {
			t.Errorf("implausible stuck position: %+v", s)
		}
		if msg := err.Error(); !strings.Contains(msg, "stalled:") || !strings.Contains(msg, s.Node) {
			t.Errorf("error text %q does not carry the stall position", msg)
		}
		return
	}
	t.Fatal("never observed a mid-run cancellation with a stall position in 25 attempts")
}

// TestDeadlineRunCarriesStallDiagnostic: same diagnostic on deadline
// expiry, with DeadlineExceeded preserved through the wrap.
func TestDeadlineRunCarriesStallDiagnostic(t *testing.T) {
	plan, feeds := heavyChain(t, 120, 256)
	for attempt := 0; attempt < 25; attempt++ {
		ctx, cancel := context.WithTimeout(context.Background(), 500*time.Microsecond)
		_, _, err := plan.Execute(ctx, feeds, nil)
		cancel()
		if err == nil {
			continue
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("expired run returned %v, want a DeadlineExceeded chain", err)
		}
		var se *StallError
		if !errors.As(err, &se) {
			continue
		}
		if len(se.Stuck) == 0 {
			t.Fatal("StallError with an empty stuck list")
		}
		return
	}
	t.Fatal("never observed a mid-run deadline expiry with a stall position in 25 attempts")
}

// TestKernelErrorCarriesNoStallWrap: real kernel failures are not
// cancellation-class and must not be dressed up as stalls.
func TestKernelErrorCarriesNoStallWrap(t *testing.T) {
	g, feeds := smallGraph()
	plan := twoLanePlan(t, g)
	if _, _, err := plan.Execute(context.Background(), feeds, nil); err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
}
