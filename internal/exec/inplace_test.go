package exec

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/ops"
	"repro/internal/tensor"
)

// planFor compiles a trivial one-lane plan for a graph.
func planFor(t *testing.T, g *graph.Graph) *Plan {
	t.Helper()
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlan(g, [][]*graph.Node{order})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestInPlaceArenaRunMatchesSequential runs an elementwise-heavy graph
// through the arena executor (which activates ops.RunInPlace on proved
// nodes) and checks outputs against the plain sequential reference, plus
// that the release schedule actually marked nodes in-place and the arena
// stays balanced across runs.
func TestInPlaceArenaRunMatchesSequential(t *testing.T) {
	g := graph.New("chainy")
	r := tensor.NewRNG(2)
	g.Inputs = []graph.ValueInfo{{Name: "x", Shape: tensor.Shape{1, 8, 6, 6}}}
	g.AddInitializer("w", r.RandTensor(8, 8, 3, 3))
	g.AddNode("conv", "Conv", []string{"x", "w"}, []string{"c"}, ops.Attrs{"pads": []int{1, 1, 1, 1}})
	g.AddNode("relu", "Relu", []string{"c"}, []string{"r"}, nil)
	g.AddNode("sig", "Sigmoid", []string{"r"}, []string{"s"}, nil)
	g.AddNode("tanh", "Tanh", []string{"s"}, []string{"out"}, nil)
	g.Outputs = []graph.ValueInfo{{Name: "out"}}
	g.Reindex()

	feeds := models.RandomInputs(g, 9)
	want, err := RunSequential(g, feeds)
	if err != nil {
		t.Fatal(err)
	}

	p := planFor(t, g)
	mem := p.memory()
	if mem == nil {
		t.Fatal("no memory state")
	}
	marked := 0
	for _, on := range mem.inplace {
		if on {
			marked++
		}
	}
	// relu and sig consume single-use intermediates; tanh produces the
	// graph output but still consumes s in place.
	if marked < 2 {
		t.Fatalf("only %d nodes marked in-place, want >= 2", marked)
	}

	ar := tensor.NewArena()
	for run := 0; run < 3; run++ {
		got, err := p.RunArena(feeds, ar)
		if err != nil {
			t.Fatal(err)
		}
		if !got["out"].AllClose(want["out"], 1e-6, 1e-7) {
			t.Fatalf("run %d: in-place arena run diverges (max diff %v)",
				run, got["out"].MaxAbsDiff(want["out"]))
		}
	}
	// Ownership transfer must not double-release: every Get is matched by
	// at most one Put, and outputs escape.
	st := ar.Stats().Snapshot()
	if st.Puts > st.Gets {
		t.Errorf("arena released more buffers (%d) than it handed out (%d)", st.Puts, st.Gets)
	}
}

// TestInPlaceReducesArenaTraffic compares arena gets with and without the
// in-place schedule on the same graph: the in-place run must allocate
// strictly fewer buffers per run.
func TestInPlaceReducesArenaTraffic(t *testing.T) {
	g := models.MustBuild("squeezenet", models.Config{ImageSize: 16})
	feeds := models.RandomInputs(g, 1)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	lanes := [][]*graph.Node{order}

	countGets := func(disableInPlace bool) int64 {
		p, err := NewPlan(g, lanes)
		if err != nil {
			t.Fatal(err)
		}
		if disableInPlace {
			mem := p.memory()
			rebuilt := make(map[*graph.Node]bool, len(mem.inplace))
			drops := make(map[*graph.Node][]memDrop, len(mem.drops))
			for n, ds := range mem.drops {
				drops[n] = ds
			}
			for _, lane := range p.Lanes {
				for _, n := range lane {
					if !mem.inplace[n] {
						continue
					}
					rebuilt[n] = false
					// Restore the drop the in-place schedule elided.
					if i := mem.plan.IndexOf(n.Inputs[0]); i >= 0 {
						drops[n] = append([]memDrop{{i, n.Inputs[0]}}, drops[n]...)
					}
				}
			}
			for n := range rebuilt {
				mem.inplace[n] = false
			}
			mem.drops = drops
		}
		ar := tensor.NewArena()
		if _, err := p.RunArena(feeds, ar); err != nil {
			t.Fatal(err)
		}
		return ar.Stats().Snapshot().Gets
	}

	with := countGets(false)
	without := countGets(true)
	if with >= without {
		t.Errorf("in-place run made %d arena gets, baseline %d — expected a reduction", with, without)
	}
	t.Logf("arena gets: %d in-place vs %d baseline", with, without)
}
