package exec

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/obs"
)

// CritStep is one node on a run's measured critical path.
type CritStep struct {
	Node string `json:"node"`
	Op   string `json:"op"`
	Lane int    `json:"lane"`
	// StartNs/DurNs place the kernel on the run clock.
	StartNs int64 `json:"start_ns"`
	DurNs   int64 `json:"dur_ns"`
	// WaitNs is the gap between the binding predecessor's finish and this
	// node's start: cross-lane message latency plus scheduling delay on the
	// path (for the first step, time from run start to the kernel).
	WaitNs int64 `json:"wait_ns"`
}

// CriticalPathReport is the measured critical path of one sampled run — the
// chain of kernels and waits that actually bounded the run's wall time —
// next to the static cost model's predicted critical path, so the two can
// be diffed: a schedule is only as good as the model that shaped it.
type CriticalPathReport struct {
	// Steps is the measured longest chain in execution order.
	Steps []CritStep `json:"steps"`
	// OpNs/WaitNs split the chain's span into kernel time and waiting;
	// WallNs is the run's wall time for reference (the chain ends at the
	// last-finishing kernel, so OpNs+WaitNs ≈ its finish offset).
	OpNs   int64 `json:"op_ns"`
	WaitNs int64 `json:"wait_ns"`
	WallNs int64 `json:"wall_ns"`
	// PredictedPath and PredictedCost are the static model's critical path
	// over the same graph (cost.CriticalPath): node names and weighted cost.
	PredictedPath []string `json:"predicted_path"`
	PredictedCost float64  `json:"predicted_cost"`
	// Overlap is the fraction of measured-path nodes that also lie on the
	// predicted path — 1.0 means the static model picked the right chain.
	Overlap float64 `json:"overlap"`
}

// CriticalPathFromTimeline recovers the measured critical path of one
// sampled run: starting from the last-finishing kernel, it walks backwards
// choosing at each node the latest-finishing of its dataflow predecessors
// and its lane predecessor (the node that ran just before it on the same
// lane — lane order is a scheduling dependence even without dataflow). The
// static model m (nil = the paper's default weights) supplies the predicted
// path for comparison.
func (p *Plan) CriticalPathFromTimeline(r *obs.RunTimeline, m cost.Model) (*CriticalPathReport, error) {
	if r == nil {
		return nil, fmt.Errorf("exec: no timeline to analyze")
	}
	if m == nil {
		m = cost.DefaultModel()
	}
	topo := p.topology()
	// Index the run's op spans by node, and link each to its lane
	// predecessor. Spans arrive grouped by lane in per-lane time order.
	type spanAt struct {
		span     obs.OpSpan
		node     *graph.Node
		lanePrev *graph.Node
	}
	nodeByName := make(map[string]*graph.Node, len(topo.opNodes))
	for _, n := range topo.opNodes {
		nodeByName[n.Name] = n
	}
	at := make(map[*graph.Node]*spanAt, len(topo.opNodes))
	lastOnLane := make(map[int32]*graph.Node, r.Lanes)
	var end *spanAt
	for _, s := range r.Spans {
		if s.Kind != obs.SpanOp {
			continue
		}
		n := nodeByName[s.Name]
		if n == nil {
			return nil, fmt.Errorf("exec: timeline span %q names no plan node", s.Name)
		}
		sa := &spanAt{span: s, node: n, lanePrev: lastOnLane[s.Lane]}
		lastOnLane[s.Lane] = n
		at[n] = sa
		if end == nil || sa.span.EndNs() > end.span.EndNs() {
			end = sa
		}
	}
	if end == nil {
		return nil, fmt.Errorf("exec: timeline has no op spans")
	}

	rep := &CriticalPathReport{WallNs: r.WallNs}
	// Backward walk: bind each step to its latest-finishing predecessor.
	var rev []CritStep
	for cur := end; cur != nil; {
		var binding *spanAt
		consider := func(n *graph.Node) {
			if n == nil {
				return
			}
			if sa := at[n]; sa != nil && (binding == nil || sa.span.EndNs() > binding.span.EndNs()) {
				binding = sa
			}
		}
		for _, pred := range p.Graph.Predecessors(cur.node) {
			consider(pred)
		}
		consider(cur.lanePrev)
		wait := cur.span.StartNs
		if binding != nil {
			wait -= binding.span.EndNs()
		}
		if wait < 0 {
			wait = 0 // clock skew between lanes' time.Now reads
		}
		rev = append(rev, CritStep{
			Node:    cur.node.Name,
			Op:      cur.node.OpType,
			Lane:    int(cur.span.Lane),
			StartNs: cur.span.StartNs,
			DurNs:   cur.span.DurNs,
			WaitNs:  wait,
		})
		rep.OpNs += cur.span.DurNs
		rep.WaitNs += wait
		cur = binding
	}
	rep.Steps = make([]CritStep, len(rev))
	for i, s := range rev {
		rep.Steps[len(rev)-1-i] = s
	}

	// Static prediction over the same graph, for the divergence view.
	pred, predCost, err := cost.CriticalPath(p.Graph, m)
	if err == nil {
		rep.PredictedCost = predCost
		onPred := make(map[string]bool, len(pred))
		for _, n := range pred {
			rep.PredictedPath = append(rep.PredictedPath, n.Name)
			onPred[n.Name] = true
		}
		if len(rep.Steps) > 0 {
			hits := 0
			for _, s := range rep.Steps {
				if onPred[s.Node] {
					hits++
				}
			}
			rep.Overlap = float64(hits) / float64(len(rep.Steps))
		}
	}
	return rep, nil
}
