package exec

import (
	"context"
	"sync"
	"testing"

	"repro/internal/graph"
)

func TestPlanOpTotals(t *testing.T) {
	g, feeds := smallGraph()
	ns := g.Nodes
	plan, err := NewPlan(g, [][]*graph.Node{{ns[0], ns[1], ns[3]}, {ns[2]}})
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.OpTotals(); got != nil {
		t.Fatalf("OpTotals before any run = %v, want nil", got)
	}
	const runs = 3
	for i := 0; i < runs; i++ {
		if _, _, err := plan.Execute(context.Background(), feeds, nil); err != nil {
			t.Fatal(err)
		}
	}
	totals := plan.OpTotals()
	byOp := map[string]int64{}
	var sum int64
	for _, tt := range totals {
		byOp[tt.Op] = tt.Count
		if tt.TotalNs <= 0 {
			t.Errorf("op %s has TotalNs %d, want > 0", tt.Op, tt.TotalNs)
		}
		sum += tt.TotalNs
	}
	// smallGraph has one node each of Relu, Sigmoid, Neg, Add.
	for _, op := range []string{"Relu", "Sigmoid", "Neg", "Add"} {
		if byOp[op] != runs {
			t.Errorf("op %s count = %d, want %d", op, byOp[op], runs)
		}
	}
	// Sorted by cumulative time descending.
	for i := 1; i < len(totals); i++ {
		if totals[i].TotalNs > totals[i-1].TotalNs {
			t.Errorf("totals not sorted: %d after %d", totals[i].TotalNs, totals[i-1].TotalNs)
		}
	}
	if sum <= 0 {
		t.Error("no time accumulated")
	}
}

// TestPlanOpTotalsConcurrent runs the shared plan from many goroutines —
// under -race this proves the per-op counters respect the immutable-Plan
// concurrency contract.
func TestPlanOpTotalsConcurrent(t *testing.T) {
	g, feeds := smallGraph()
	ns := g.Nodes
	plan, err := NewPlan(g, [][]*graph.Node{{ns[0], ns[1], ns[3]}, {ns[2]}})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const perG = 20
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				if _, _, err := plan.Execute(context.Background(), feeds, nil); err != nil {
					t.Error(err)
					return
				}
				_ = plan.OpTotals() // concurrent reader
			}
		}()
	}
	wg.Wait()
	var count int64
	for _, tt := range plan.OpTotals() {
		count += tt.Count
	}
	// 4 nodes per run × goroutines × perG runs.
	if want := int64(4 * goroutines * perG); count != want {
		t.Errorf("total invocations = %d, want %d", count, want)
	}
}
