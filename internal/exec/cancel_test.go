package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// heavyChain builds a graph of n chained dim×dim MatMuls — long enough to
// cancel reliably mid-run — split into two lanes so one lane spends the
// run blocked on a cross-lane receive (the other cancellation observation
// point besides the between-ops poll).
func heavyChain(t *testing.T, n, dim int) (*Plan, Env) {
	t.Helper()
	g := graph.New("chain")
	g.Inputs = []graph.ValueInfo{{Name: "x", Shape: tensor.Shape{dim, dim}}}
	r := tensor.NewRNG(1)
	g.Initializers["w"] = r.RandTensor(dim, dim)
	prev := "x"
	for i := 0; i < n; i++ {
		out := fmt.Sprintf("v%d", i)
		g.AddNode(fmt.Sprintf("m%d", i), "MatMul", []string{prev, "w"}, []string{out}, nil)
		prev = out
	}
	g.Outputs = []graph.ValueInfo{{Name: prev}}
	lane0 := g.Nodes[:len(g.Nodes)-1]
	lane1 := g.Nodes[len(g.Nodes)-1:]
	plan, err := NewPlan(g, [][]*graph.Node{lane0, lane1})
	if err != nil {
		t.Fatal(err)
	}
	return plan, Env{"x": r.RandTensor(dim, dim)}
}

func TestExecuteCancelledBeforeStart(t *testing.T) {
	g, feeds := smallGraph()
	plan := twoLanePlan(t, g)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := plan.Execute(ctx, feeds, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("Execute on cancelled ctx = %v, want context.Canceled", err)
	}
	if _, err := RunSequentialCtx(ctx, g, feeds); !errors.Is(err, context.Canceled) {
		t.Errorf("RunSequentialCtx on cancelled ctx did not return Canceled")
	}
	if _, err := MeasureCostsCtx(ctx, g, feeds, 1, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("MeasureCostsCtx on cancelled ctx did not return Canceled")
	}
}

// TestExecuteCancelMidRun cancels a running plan and asserts the
// cooperative unwind: the run returns context.Canceled well before its
// natural completion, every lane goroutine exits, and the arena it ran
// with is consistent and immediately reusable.
func TestExecuteCancelMidRun(t *testing.T) {
	plan, feeds := heavyChain(t, 120, 256)
	want, err := RunSequential(plan.Graph, feeds)
	if err != nil {
		t.Fatal(err)
	}
	ar := tensor.NewArena()
	before := runtime.NumGoroutine()

	cancelled := false
	for attempt := 0; attempt < 25 && !cancelled; attempt++ {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(500 * time.Microsecond)
			cancel()
		}()
		_, _, err := plan.Execute(ctx, feeds, ar)
		cancel()
		switch {
		case err == nil:
			// The run beat the cancel; try again.
		case errors.Is(err, context.Canceled):
			cancelled = true
		default:
			t.Fatalf("cancelled run failed with non-context error: %v", err)
		}
	}
	if !cancelled {
		t.Fatal("never observed a mid-run cancellation in 25 attempts")
	}

	// No leaked lane goroutines: Execute waits for its lanes, so the count
	// returns to baseline (allow slack for runtime helpers).
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Errorf("goroutines grew from %d to %d after cancelled runs", before, n)
	}

	// The aborted run abandoned its in-flight tensors to the GC; the
	// in-use gauge must not ratchet up with them.
	if in := ar.Stats().Snapshot().InUseBytes; in != 0 {
		t.Errorf("InUseBytes = %d after cancelled runs, want 0 (abandoned buffers not reconciled)", in)
	}

	// The arena a cancelled run used is reusable: a fresh uncancelled run
	// on it still produces the reference output.
	got, _, err := plan.Execute(context.Background(), feeds, ar)
	if err != nil {
		t.Fatalf("run after cancellation: %v", err)
	}
	out := plan.Graph.Outputs[0].Name
	if !got[out].AllClose(want[out], 1e-3, 1e-4) {
		t.Error("post-cancellation arena run diverged from sequential reference")
	}
	// A clean arena run balances its own books too (outputs escape,
	// intermediates are Put).
	if in := ar.Stats().Snapshot().InUseBytes; in != 0 {
		t.Errorf("InUseBytes = %d after clean run, want 0", in)
	}
}

// TestExecuteDeadlineExpiresMidRun: deadline expiry surfaces as
// context.DeadlineExceeded through the same cooperative unwind.
func TestExecuteDeadlineExpiresMidRun(t *testing.T) {
	plan, feeds := heavyChain(t, 120, 256)
	for attempt := 0; attempt < 25; attempt++ {
		ctx, cancel := context.WithTimeout(context.Background(), 500*time.Microsecond)
		_, _, err := plan.Execute(ctx, feeds, nil)
		cancel()
		if err == nil {
			continue // run beat the deadline; try again
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("expired run returned %v, want DeadlineExceeded", err)
		}
		return
	}
	t.Fatal("never observed a mid-run deadline expiry in 25 attempts")
}

// TestExecuteKernelErrorOutranksCancel: when a lane dies for a real reason,
// that error must win over a racing cancellation so monitoring sees the
// root cause.
func TestExecuteKernelErrorOutranksCancel(t *testing.T) {
	g := graph.New("bad")
	g.Inputs = []graph.ValueInfo{{Name: "x"}}
	g.AddNode("z", "NoSuchOp", []string{"x"}, []string{"y"}, nil)
	g.Outputs = []graph.ValueInfo{{Name: "y"}}
	plan, err := NewPlan(g, [][]*graph.Node{{g.Nodes[0]}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, _, execErr := plan.Execute(ctx, Env{"x": tensor.Zeros(1)}, nil)
	if execErr == nil || errors.Is(execErr, context.Canceled) {
		t.Fatalf("kernel failure reported as %v", execErr)
	}
}
