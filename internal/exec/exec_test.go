package exec

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/tensor"
)

// smallGraph: x -> Relu -> {Sigmoid, Neg} -> Add -> out.
func smallGraph() (*graph.Graph, Env) {
	g := graph.New("small")
	g.Inputs = []graph.ValueInfo{{Name: "x", Shape: tensor.Shape{4}}}
	g.AddNode("r", "Relu", []string{"x"}, []string{"vr"}, nil)
	g.AddNode("s", "Sigmoid", []string{"vr"}, []string{"vs"}, nil)
	g.AddNode("n", "Neg", []string{"vr"}, []string{"vn"}, nil)
	g.AddNode("a", "Add", []string{"vs", "vn"}, []string{"out"}, nil)
	g.Outputs = []graph.ValueInfo{{Name: "out"}}
	feeds := Env{"x": tensor.FromSlice([]float32{-1, 0, 1, 2})}
	return g, feeds
}

func TestRunSequentialSmall(t *testing.T) {
	g, feeds := smallGraph()
	out, err := RunSequential(g, feeds)
	if err != nil {
		t.Fatal(err)
	}
	got := out["out"]
	if got == nil || got.Numel() != 4 {
		t.Fatalf("bad output: %v", got)
	}
	// sigmoid(relu(x)) - relu(x) for x=2: sigmoid(2) - 2.
	want := float32(1/(1+math.Exp(-2))) - 2
	if diff := got.Data()[3] - want; diff > 1e-5 || diff < -1e-5 {
		t.Errorf("out[3] = %v, want %v", got.Data()[3], want)
	}
}

func TestRunSequentialMissingFeed(t *testing.T) {
	g, _ := smallGraph()
	if _, err := RunSequential(g, Env{}); err == nil {
		t.Error("missing feed accepted")
	}
}

func TestRunSequentialShapeMismatch(t *testing.T) {
	g, _ := smallGraph()
	if _, err := RunSequential(g, Env{"x": tensor.Zeros(7)}); err == nil {
		t.Error("wrong-shape feed accepted")
	}
}

func TestRunSequentialUnknownOp(t *testing.T) {
	g := graph.New("bad")
	g.Inputs = []graph.ValueInfo{{Name: "x"}}
	g.AddNode("z", "NoSuchOp", []string{"x"}, []string{"y"}, nil)
	g.Outputs = []graph.ValueInfo{{Name: "y"}}
	_, err := RunSequential(g, Env{"x": tensor.Zeros(1)})
	if err == nil || !strings.Contains(err.Error(), "NoSuchOp") {
		t.Errorf("unknown op not reported: %v", err)
	}
}

func TestNewPlanValidatesPartition(t *testing.T) {
	g, _ := smallGraph()
	ns := g.Nodes
	if _, err := NewPlan(g, [][]*graph.Node{{ns[0], ns[1]}, {ns[2]}}); err == nil {
		t.Error("incomplete lane cover accepted")
	}
	if _, err := NewPlan(g, [][]*graph.Node{{ns[0], ns[1], ns[2], ns[3]}, {ns[0]}}); err == nil {
		t.Error("duplicate node accepted")
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	g, feeds := smallGraph()
	ns := g.Nodes
	plan, err := NewPlan(g, [][]*graph.Node{{ns[0], ns[1], ns[3]}, {ns[2]}})
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunSequential(g, feeds)
	if err != nil {
		t.Fatal(err)
	}
	got, err := plan.Run(feeds)
	if err != nil {
		t.Fatal(err)
	}
	if !got["out"].Equal(want["out"]) {
		t.Error("parallel result differs from sequential")
	}
}

func TestParallelProfileCountsMessages(t *testing.T) {
	g, feeds := smallGraph()
	ns := g.Nodes
	plan, _ := NewPlan(g, [][]*graph.Node{{ns[0], ns[1], ns[3]}, {ns[2]}})
	_, prof, err := plan.RunProfiled(feeds)
	if err != nil {
		t.Fatal(err)
	}
	// Lane 1 receives vr and sends vn; lane 0 receives vn.
	if prof.Lanes[1].Recvs != 1 || prof.Lanes[1].Sends != 1 {
		t.Errorf("lane1 sends/recvs = %d/%d", prof.Lanes[1].Sends, prof.Lanes[1].Recvs)
	}
	if prof.Lanes[0].Recvs != 1 {
		t.Errorf("lane0 recvs = %d", prof.Lanes[0].Recvs)
	}
	if prof.Wall <= 0 {
		t.Error("no wall time recorded")
	}
	_ = prof.TotalSlack() // must not panic
}

func TestParallelErrorPropagatesWithoutDeadlock(t *testing.T) {
	g := graph.New("failing")
	g.Inputs = []graph.ValueInfo{{Name: "x"}}
	g.AddNode("a", "Relu", []string{"x"}, []string{"va"}, nil)
	// MatMul on rank-1 input fails at run time.
	g.AddNode("bad", "MatMul", []string{"va", "va"}, []string{"vb"}, nil)
	g.AddNode("c", "Relu", []string{"vb"}, []string{"vc"}, nil)
	g.Outputs = []graph.ValueInfo{{Name: "vc"}}
	ns := g.Nodes
	plan, err := NewPlan(g, [][]*graph.Node{{ns[0], ns[1]}, {ns[2]}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = plan.Run(Env{"x": tensor.Zeros(3)})
	if err == nil {
		t.Fatal("kernel failure not propagated")
	}
}

func TestNewPlanOrderedRejectsDeadlock(t *testing.T) {
	// Two lanes each needing the other's later output in their stated
	// order: a->b in lane0 order [b-dependent first] is impossible within
	// one lane; craft cross-lane circular wait instead.
	g := graph.New("dl")
	g.Inputs = []graph.ValueInfo{{Name: "x"}}
	g.AddNode("a", "Relu", []string{"x"}, []string{"va"}, nil)
	g.AddNode("b", "Relu", []string{"va"}, []string{"vb"}, nil)
	g.AddNode("c", "Relu", []string{"vb"}, []string{"vc"}, nil)
	g.AddNode("d", "Relu", []string{"vc"}, []string{"vd"}, nil)
	g.Outputs = []graph.ValueInfo{{Name: "vd"}}
	ns := g.Nodes
	// Lane0: [c, a] — c waits for b (lane1) which waits for a (lane0,
	// behind c): deadlock.
	if _, err := NewPlanOrdered(g, [][]*graph.Node{{ns[2], ns[0]}, {ns[1], ns[3]}}); err == nil {
		t.Error("deadlocking lane order accepted")
	}
	// Feasible order accepted and runs.
	plan, err := NewPlanOrdered(g, [][]*graph.Node{{ns[0], ns[2]}, {ns[1], ns[3]}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := plan.Run(Env{"x": tensor.FromSlice([]float32{1})})
	if err != nil || out["vd"] == nil {
		t.Fatalf("run failed: %v", err)
	}
}

func TestSequentialPlanAndSimulate(t *testing.T) {
	g, _ := smallGraph()
	m := cost.DefaultModel()
	sp, err := SequentialPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(sp, m)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != res.TotalWork {
		t.Errorf("sequential makespan %v != total work %v", res.Makespan, res.TotalWork)
	}
	if res.Speedup() != 1 {
		t.Errorf("sequential speedup = %v", res.Speedup())
	}
}

func TestSimulateParallelBounds(t *testing.T) {
	g, _ := smallGraph()
	m := cost.DefaultModel()
	ns := g.Nodes
	plan, _ := NewPlan(g, [][]*graph.Node{{ns[0], ns[1], ns[3]}, {ns[2]}})
	res, err := Simulate(plan, m)
	if err != nil {
		t.Fatal(err)
	}
	_, cp, _ := cost.CriticalPath(g, m)
	if res.Makespan < cp-1e-9 {
		// Cross-lane edges add overhead, so makespan >= CP without
		// intra-lane edge costs is not guaranteed exactly; but it must be
		// at least the heaviest single-lane work.
		t.Logf("makespan %v below CP %v (edge costs differ)", res.Makespan, cp)
	}
	if res.Makespan > res.TotalWork+float64(len(g.Nodes))*m.EdgeCost() {
		t.Errorf("makespan %v exceeds any sensible bound", res.Makespan)
	}
	if len(res.LaneBusy) != 2 {
		t.Errorf("lane busy = %v", res.LaneBusy)
	}
}

func TestMeasureCostsProducesPositiveDurations(t *testing.T) {
	g, feeds := smallGraph()
	mm, err := MeasureCosts(g, feeds, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(mm.ByName) != len(g.Nodes) {
		t.Fatalf("measured %d of %d nodes", len(mm.ByName), len(g.Nodes))
	}
	for name, d := range mm.ByName {
		if d <= 0 {
			t.Errorf("node %s measured %v", name, d)
		}
	}
	if mm.TotalMicros() <= 0 {
		t.Error("total micros <= 0")
	}
	if mm.Edge != 3 {
		t.Errorf("default edge = %v", mm.Edge)
	}
	// Unmeasured nodes fall back to Default.
	ghost := &graph.Node{Name: "ghost", OpType: "Relu"}
	if mm.NodeCost(ghost) != mm.Default {
		t.Error("default cost not applied")
	}
}

func TestMeasuredModelSizeAwareEdges(t *testing.T) {
	g, feeds := smallGraph()
	mm, err := MeasureCosts(g, feeds, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	mm.PaperEquivalentQueues()
	r := g.NodeByName("r")
	s := g.NodeByName("s")
	withSize := mm.EdgeCostBetween(r, s)
	if withSize <= mm.Edge {
		t.Errorf("size-aware edge %v not above base %v", withSize, mm.Edge)
	}
	// EdgeCostOf dispatches through the interface.
	if cost.EdgeCostOf(mm, r, s) != withSize {
		t.Error("EdgeCostOf did not use EdgeCoster")
	}
}

func TestWithIntraOpScaling(t *testing.T) {
	g, feeds := smallGraph()
	mm, _ := MeasureCosts(g, feeds, 1, 0)
	conv := &graph.Node{Name: "conv", OpType: "Conv"}
	mm.ByName["conv"] = 100
	base := mm.NodeCost(conv)
	scaled := WithIntraOp(mm, IntraOpConfig{Threads: 4, Cores: 12}, 2)
	if got := scaled.NodeCost(conv); got >= base {
		t.Errorf("intra-op did not speed conv: %v >= %v", got, base)
	}
	// Light ops are not scaled.
	relu := &graph.Node{Name: "r", OpType: "Relu"}
	light := mm.NodeCost(relu)
	if got := scaled.NodeCost(relu); got != light {
		t.Errorf("relu scaled from %v to %v", light, got)
	}
	// Oversubscription slows everything.
	over := WithIntraOp(mm, IntraOpConfig{Threads: 8, Cores: 4}, 4)
	if got := over.NodeCost(relu); got <= light {
		t.Errorf("oversubscription not modelled: %v <= %v", got, light)
	}
}

// Property: on random DAGs, any 2-way split of the topological order into
// lanes runs and matches the simulated-progress check; moreover the
// simulated makespan is between max-lane-work and total work + edges.
func TestSimulateRandomPlans(t *testing.T) {
	m := cost.DefaultModel()
	f := func(seed uint32) bool {
		g := graph.RandomDAG(tensor.NewRNG(uint64(seed)+17), 24)
		order, err := g.TopoSort()
		if err != nil {
			return false
		}
		var a, b []*graph.Node
		for i, n := range order {
			if i%2 == 0 {
				a = append(a, n)
			} else {
				b = append(b, n)
			}
		}
		plan, err := NewPlan(g, [][]*graph.Node{a, b})
		if err != nil {
			return false
		}
		res, err := Simulate(plan, m)
		if err != nil {
			return false
		}
		maxLane := res.LaneBusy[0]
		if res.LaneBusy[1] > maxLane {
			maxLane = res.LaneBusy[1]
		}
		edges := float64(g.Stats().Edges) * m.EdgeCost()
		return res.Makespan >= maxLane-1e-9 && res.Makespan <= res.TotalWork+edges+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
