package exec

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/graph"
)

// Simulate computes the deterministic makespan of a plan under the static
// cost model: each lane is a core executing its nodes in order; a node
// starts when its lane is free AND all predecessors have finished (plus the
// model's edge overhead for cross-lane dependences). This is the
// discrete-event counterpart of the wall-clock measurements — it lets the
// benchmark harness report reproducible "who wins by how much" numbers
// independent of host load.
func Simulate(p *Plan, m cost.Model) (SimResult, error) {
	laneOf := make(map[*graph.Node]int, len(p.Graph.Nodes))
	for i, lane := range p.Lanes {
		for _, n := range lane {
			laneOf[n] = i
		}
	}
	finish := make(map[*graph.Node]float64, len(p.Graph.Nodes))
	laneFree := make([]float64, len(p.Lanes))
	laneBusy := make([]float64, len(p.Lanes))

	// Lanes interleave: repeatedly pick, among each lane's next unexecuted
	// node, one whose predecessors all finished; greedy event loop.
	idx := make([]int, len(p.Lanes))
	remaining := len(p.Graph.Nodes)
	for remaining > 0 {
		progressed := false
		for li := range p.Lanes {
			for idx[li] < len(p.Lanes[li]) {
				n := p.Lanes[li][idx[li]]
				ready := true
				start := laneFree[li]
				for _, pred := range p.Graph.Predecessors(n) {
					f, done := finish[pred]
					if !done {
						ready = false
						break
					}
					arrival := f
					if laneOf[pred] != li {
						arrival += cost.EdgeCostOf(m, pred, n)
					}
					if arrival > start {
						start = arrival
					}
				}
				if !ready {
					break
				}
				d := m.NodeCost(n)
				finish[n] = start + d
				laneFree[li] = start + d
				laneBusy[li] += d
				idx[li]++
				remaining--
				progressed = true
			}
		}
		if !progressed {
			return SimResult{}, fmt.Errorf("exec: simulation stalled with %d nodes left (cross-lane cycle in lane order?)", remaining)
		}
	}
	var makespan float64
	for _, f := range laneFree {
		if f > makespan {
			makespan = f
		}
	}
	res := SimResult{Makespan: makespan, LaneBusy: laneBusy}
	for _, n := range p.Graph.Nodes {
		res.TotalWork += m.NodeCost(n)
	}
	return res, nil
}

// SimResult summarizes a simulated execution.
type SimResult struct {
	// Makespan is the simulated parallel finish time.
	Makespan float64
	// TotalWork is the sum of node costs — the sequential execution time.
	TotalWork float64
	// LaneBusy is per-lane busy time; Makespan - LaneBusy[i] is lane i's
	// idle + slack time.
	LaneBusy []float64
}

// Speedup is the simulated sequential/parallel ratio.
func (r SimResult) Speedup() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return r.TotalWork / r.Makespan
}

// SequentialPlan wraps the whole graph in a single lane (the generated
// "single core non-parallel version" the paper also emits).
func SequentialPlan(g *graph.Graph) (*Plan, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	return &Plan{Graph: g, Lanes: [][]*graph.Node{order}, ChanDepth: 1}, nil
}
