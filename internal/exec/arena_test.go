package exec

import (
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// twoLanePlan splits smallGraph so the Neg node runs in its own lane,
// giving the plan a cross-lane tensor dependence each way.
func twoLanePlan(t *testing.T, g *graph.Graph) *Plan {
	t.Helper()
	var lane0, lane1 []*graph.Node
	for _, n := range g.Nodes {
		if n.Name == "n" {
			lane1 = append(lane1, n)
		} else {
			lane0 = append(lane0, n)
		}
	}
	plan, err := NewPlan(g, [][]*graph.Node{lane0, lane1})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestRunArenaMatchesSequential(t *testing.T) {
	g, feeds := smallGraph()
	ref, err := RunSequential(g, feeds)
	if err != nil {
		t.Fatal(err)
	}
	plan := twoLanePlan(t, g)
	ar := tensor.NewArena()
	for i := 0; i < 5; i++ {
		out, err := plan.RunArena(feeds, ar)
		if err != nil {
			t.Fatal(err)
		}
		if !out["out"].Equal(ref["out"]) {
			t.Fatalf("run %d: arena output diverged from sequential reference", i)
		}
	}
	st := ar.Stats().Snapshot()
	if st.Gets == 0 {
		t.Fatal("kernels did not allocate through the arena")
	}
	if st.Puts == 0 {
		t.Fatal("no intermediate was released back to the arena")
	}
	// vr, vs, vn are intermediates (3 per run); "out" escapes. Exactly the
	// intermediates must come back.
	if want := int64(5 * 3); st.Puts != want {
		t.Fatalf("puts = %d, want %d (three intermediates x five runs)", st.Puts, want)
	}
}

// TestRunArenaOutputNotRecycled guards the pinning rule: a graph output's
// buffer must never return to the arena, or a later run would overwrite a
// tensor the caller still holds.
func TestRunArenaOutputNotRecycled(t *testing.T) {
	g, feeds := smallGraph()
	plan := twoLanePlan(t, g)
	ar := tensor.NewArena()
	first, err := plan.RunArena(feeds, ar)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]float32(nil), first["out"].Data()...)
	for i := 0; i < 10; i++ {
		if _, err := plan.RunArena(feeds, ar); err != nil {
			t.Fatal(err)
		}
	}
	for i, v := range first["out"].Data() {
		if v != snapshot[i] {
			t.Fatalf("output buffer was recycled: element %d changed %v -> %v", i, snapshot[i], v)
		}
	}
}

// TestRunArenaSteadyState: after the first run seeded the free lists, the
// only fresh allocations per run are the escaping outputs.
func TestRunArenaSteadyState(t *testing.T) {
	g, feeds := smallGraph()
	plan := twoLanePlan(t, g)
	ar := tensor.NewArena()
	if _, err := plan.RunArena(feeds, ar); err != nil {
		t.Fatal(err)
	}
	missesAfterWarm := ar.Stats().Misses.Load()
	const runs = 20
	for i := 0; i < runs; i++ {
		if _, err := plan.RunArena(feeds, ar); err != nil {
			t.Fatal(err)
		}
	}
	// smallGraph has one output; each run permanently takes one buffer out
	// of the output's size class, so at most one miss per run.
	delta := ar.Stats().Misses.Load() - missesAfterWarm
	if delta > runs {
		t.Fatalf("misses grew by %d over %d steady-state runs, want <= %d (outputs only)",
			delta, runs, runs)
	}
	// Between runs nothing is checked out: intermediates were Put back and
	// graph outputs escaped the accounting. A long-lived arena must report
	// a flat working set, not a per-run ratchet.
	if inUse := ar.Stats().InUseBytes.Load(); inUse != 0 {
		t.Fatalf("in-use bytes = %d between runs, want 0 (escaped outputs still counted?)", inUse)
	}
}

// TestRunArenaConcurrentIndependentArenas is the acceptance-criteria race
// test: many goroutines share one immutable Plan, each run owning its own
// arena (run with -race).
func TestRunArenaConcurrentIndependentArenas(t *testing.T) {
	g, feeds := smallGraph()
	ref, err := RunSequential(g, feeds)
	if err != nil {
		t.Fatal(err)
	}
	plan := twoLanePlan(t, g)
	const goroutines, iters = 16, 25
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ar := tensor.NewArena() // per-goroutine arena, reused across its runs
			for j := 0; j < iters; j++ {
				out, err := plan.RunArena(feeds, ar)
				if err != nil {
					t.Errorf("concurrent arena run: %v", err)
					return
				}
				if !out["out"].Equal(ref["out"]) {
					t.Error("concurrent arena run diverged from sequential reference")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestRunArenaMixedWithPlainRuns: arena and non-arena runs of the same
// plan interleave freely (the registry serves both paths in production).
func TestRunArenaMixedWithPlainRuns(t *testing.T) {
	g, feeds := smallGraph()
	ref, err := RunSequential(g, feeds)
	if err != nil {
		t.Fatal(err)
	}
	plan := twoLanePlan(t, g)
	ar := tensor.NewArena()
	for i := 0; i < 6; i++ {
		var out Env
		if i%2 == 0 {
			out, err = plan.RunArena(feeds, ar)
		} else {
			out, err = plan.Run(feeds)
		}
		if err != nil {
			t.Fatal(err)
		}
		if !out["out"].Equal(ref["out"]) {
			t.Fatalf("run %d diverged", i)
		}
	}
}

// TestRunArenaSharedValueAcrossLanes stresses a value consumed in several
// lanes: the release must wait for the last consumer regardless of lane.
func TestRunArenaSharedValueAcrossLanes(t *testing.T) {
	g := graph.New("fan")
	g.Inputs = []graph.ValueInfo{{Name: "x", Shape: tensor.Shape{64}}}
	g.AddNode("r", "Relu", []string{"x"}, []string{"v"}, nil)
	g.AddNode("a", "Sigmoid", []string{"v"}, []string{"va"}, nil)
	g.AddNode("b", "Neg", []string{"v"}, []string{"vb"}, nil)
	g.AddNode("c", "Exp", []string{"v"}, []string{"vc"}, nil)
	g.AddNode("s1", "Add", []string{"va", "vb"}, []string{"t"}, nil)
	g.AddNode("s2", "Add", []string{"t", "vc"}, []string{"out"}, nil)
	g.Outputs = []graph.ValueInfo{{Name: "out"}}
	feeds := Env{"x": tensor.NewRNG(3).RandTensor(64)}

	ref, err := RunSequential(g, feeds)
	if err != nil {
		t.Fatal(err)
	}
	// One lane per consumer of v, plus the spine.
	byName := map[string]*graph.Node{}
	for _, n := range g.Nodes {
		byName[n.Name] = n
	}
	lanes := [][]*graph.Node{
		{byName["r"], byName["a"], byName["s1"], byName["s2"]},
		{byName["b"]},
		{byName["c"]},
	}
	plan, err := NewPlan(g, lanes)
	if err != nil {
		t.Fatal(err)
	}
	ar := tensor.NewArena()
	for i := 0; i < 50; i++ {
		out, err := plan.RunArena(feeds, ar)
		if err != nil {
			t.Fatal(err)
		}
		if !out["out"].AllClose(ref["out"], 1e-6, 1e-7) {
			t.Fatalf("run %d: fan-out value released too early?", i)
		}
	}
}
