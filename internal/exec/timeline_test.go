package exec

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/obs"
)

// TestPlanTimelineCapture runs the two-lane plan with the flight recorder
// on and checks the sampled run carries op spans for every node plus the
// cross-lane wait/send events the split creates.
func TestPlanTimelineCapture(t *testing.T) {
	g, feeds := smallGraph()
	plan := twoLanePlan(t, g)
	tl := plan.EnableTimeline(1, 4)
	for i := 0; i < 3; i++ {
		if _, err := plan.Run(feeds); err != nil {
			t.Fatal(err)
		}
	}
	if tl.Runs() != 3 {
		t.Fatalf("Runs() = %d, want 3", tl.Runs())
	}
	r := plan.LastTimeline()
	if r == nil {
		t.Fatal("no timeline recorded")
	}
	if !r.Complete || r.Lanes != 2 {
		t.Fatalf("run = %+v", r)
	}
	var ops, waits, sends int
	nodes := map[string]bool{}
	for _, s := range r.Spans {
		switch s.Kind {
		case obs.SpanOp:
			ops++
			nodes[s.Name] = true
			if s.Peer != -1 {
				t.Errorf("op span %q peer = %d", s.Name, s.Peer)
			}
		case obs.SpanRecvWait:
			waits++
			if s.Peer < 0 || int(s.Peer) >= r.Lanes {
				t.Errorf("wait span %q peer = %d", s.Name, s.Peer)
			}
		case obs.SpanSend:
			sends++
		}
	}
	if ops != len(g.Nodes) {
		t.Errorf("%d op spans, want %d", ops, len(g.Nodes))
	}
	for _, n := range g.Nodes {
		if !nodes[n.Name] {
			t.Errorf("node %q missing from timeline", n.Name)
		}
	}
	// The split creates a transfer each way: vr (lane0 -> lane1) and
	// vn (lane1 -> lane0).
	if sends < 2 || waits < 2 {
		t.Errorf("sends=%d waits=%d, want >= 2 each", sends, waits)
	}

	// Off by default elsewhere: a fresh plan records nothing.
	fresh := twoLanePlan(t, g)
	if _, err := fresh.Run(feeds); err != nil {
		t.Fatal(err)
	}
	if fresh.LastTimeline() != nil {
		t.Error("plan without EnableTimeline recorded a run")
	}
	// And DisableTimeline stops sampling.
	plan.DisableTimeline()
	if _, err := plan.Run(feeds); err != nil {
		t.Fatal(err)
	}
	if tl.Runs() != 3 {
		t.Errorf("detached recorder advanced to %d runs", tl.Runs())
	}
}

// TestCriticalPathFromTimeline checks the measured-path walk: it must span
// the run from (near) start to the last op, be time-ordered, and report
// totals consistent with the wall time.
func TestCriticalPathFromTimeline(t *testing.T) {
	g, feeds := smallGraph()
	plan := twoLanePlan(t, g)
	plan.EnableTimeline(1, 2)
	if _, err := plan.Run(feeds); err != nil {
		t.Fatal(err)
	}
	r := plan.LastTimeline()
	rep, err := plan.CriticalPathFromTimeline(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Steps) == 0 {
		t.Fatal("empty critical path")
	}
	// The path ends at the last-finishing op and is time-ordered.
	for i := 1; i < len(rep.Steps); i++ {
		if rep.Steps[i].StartNs < rep.Steps[i-1].StartNs {
			t.Errorf("step %d starts before its predecessor", i)
		}
	}
	lastStep := rep.Steps[len(rep.Steps)-1]
	if lastStep.Node != "a" {
		t.Errorf("path ends at %q, want the sink node \"a\"", lastStep.Node)
	}
	if rep.OpNs <= 0 || rep.WallNs <= 0 {
		t.Errorf("OpNs=%d WallNs=%d, want positive", rep.OpNs, rep.WallNs)
	}
	if rep.OpNs+rep.WaitNs > 4*rep.WallNs {
		t.Errorf("path time %d way beyond wall %d", rep.OpNs+rep.WaitNs, rep.WallNs)
	}
	if len(rep.PredictedPath) == 0 || rep.PredictedCost <= 0 {
		t.Errorf("missing static prediction: %+v", rep)
	}
	if rep.Overlap < 0 || rep.Overlap > 1 {
		t.Errorf("Overlap = %v, want [0,1]", rep.Overlap)
	}
	// No timeline -> error, not a nil-pointer crash.
	if _, err := plan.CriticalPathFromTimeline(nil, nil); err == nil {
		t.Error("nil timeline accepted")
	}
}

// TestPlanCalibrate checks the live-counter calibration report against the
// small graph: every op type appears, ratios are positive, and the measured
// model it emits covers every node.
func TestPlanCalibrate(t *testing.T) {
	g, feeds := smallGraph()
	plan := twoLanePlan(t, g)
	if c := plan.Calibrate(nil); c != nil {
		t.Fatalf("calibration before any run: %+v", c)
	}
	for i := 0; i < 4; i++ {
		if _, err := plan.Run(feeds); err != nil {
			t.Fatal(err)
		}
	}
	c := plan.Calibrate(cost.DefaultModel())
	if c == nil {
		t.Fatal("nil calibration after runs")
	}
	if c.Nodes != len(g.Nodes) {
		t.Errorf("Nodes = %d, want %d", c.Nodes, len(g.Nodes))
	}
	if c.BaselineUsPerWt <= 0 {
		t.Errorf("baseline = %v", c.BaselineUsPerWt)
	}
	if c.RankCorrelation < -1 || c.RankCorrelation > 1 {
		t.Errorf("rank correlation = %v", c.RankCorrelation)
	}
	seen := map[string]bool{}
	for _, oc := range c.Ops {
		seen[oc.Op] = true
		if oc.Count != 4 {
			t.Errorf("%s count = %d, want 4", oc.Op, oc.Count)
		}
		if oc.MeanUs <= 0 || oc.Ratio <= 0 || oc.StaticWt <= 0 {
			t.Errorf("%s: %+v", oc.Op, oc)
		}
	}
	for _, op := range []string{"Relu", "Sigmoid", "Neg", "Add"} {
		if !seen[op] {
			t.Errorf("op %s missing from calibration", op)
		}
	}
	if len(c.Worst) == 0 || len(c.Worst) > 5 {
		t.Errorf("Worst has %d entries", len(c.Worst))
	}
	if c.Measured == nil || len(c.Measured.ByName) != len(g.Nodes) {
		t.Fatalf("measured model = %+v", c.Measured)
	}
	if f := c.Factors(); len(f) != len(c.Ops) {
		t.Errorf("Factors() has %d entries, want %d", len(f), len(c.Ops))
	}
	// The factors feed StaticModel.Rescale — the profile-guided loop.
	scaled := cost.DefaultModel().Rescale(c.Factors())
	if scaled == nil {
		t.Fatal("Rescale returned nil")
	}
	for _, n := range g.Nodes {
		if scaled.NodeCost(n) <= 0 {
			t.Errorf("rescaled cost of %s not positive", n.Name)
		}
	}
}
