package exec

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// gemmGraph: x -> Gemm(W const, b const) -> Relu -> MatMul(V const) -> out.
func gemmGraph() (*graph.Graph, Env) {
	r := tensor.NewRNG(71)
	g := graph.New("gemmchain")
	g.Inputs = []graph.ValueInfo{{Name: "x", Shape: tensor.Shape{3, 8}}}
	g.Outputs = []graph.ValueInfo{{Name: "out"}}
	g.AddInitializer("W", r.RandTensor(8, 13))
	g.AddInitializer("b", r.RandTensor(13))
	g.AddInitializer("V", r.RandTensor(13, 5))
	g.AddNode("g", "Gemm", []string{"x", "W", "b"}, []string{"vg"}, nil)
	g.AddNode("r", "Relu", []string{"vg"}, []string{"vr"}, nil)
	g.AddNode("m", "MatMul", []string{"vr", "V"}, []string{"out"}, nil)
	feeds := Env{"x": r.RandTensor(3, 8)}
	return g, feeds
}

// TestPlanPrepacksConstantWeights: a plan over a graph with constant GEMM
// operands must build a prepack table, and prepacked parallel runs must be
// bit-identical to the sequential reference (which packs at call time).
func TestPlanPrepacksConstantWeights(t *testing.T) {
	g, feeds := gemmGraph()
	ns := g.Nodes
	plan, err := NewPlan(g, [][]*graph.Node{{ns[0], ns[1], ns[2]}})
	if err != nil {
		t.Fatal(err)
	}
	nodes, bytes := plan.PrepackWeights()
	if nodes != 2 {
		t.Fatalf("prepacked %d nodes, want 2 (Gemm + MatMul)", nodes)
	}
	if bytes <= 0 {
		t.Fatal("prepacked bytes not reported")
	}
	want, err := RunSequential(g, feeds)
	if err != nil {
		t.Fatal(err)
	}
	got, err := plan.Run(feeds)
	if err != nil {
		t.Fatal(err)
	}
	if !got["out"].Equal(want["out"]) {
		t.Error("prepacked parallel run differs from sequential reference")
	}
	// Arena runs share the same packed table.
	ar := tensor.NewArena()
	got2, err := plan.RunArena(feeds, ar)
	if err != nil {
		t.Fatal(err)
	}
	if !got2["out"].Equal(want["out"]) {
		t.Error("prepacked arena run differs from sequential reference")
	}
}

// TestPrepackSharedAcrossReplicas: nodes sharing one weight initializer
// (hyperclustering replicates nodes per sample, weights shared) must
// share one packing — per-replica copies would multiply resident packed
// bytes by the batch size.
func TestPrepackSharedAcrossReplicas(t *testing.T) {
	r := tensor.NewRNG(73)
	g := graph.New("replicas")
	g.Inputs = []graph.ValueInfo{
		{Name: "x0", Shape: tensor.Shape{2, 8}},
		{Name: "x1", Shape: tensor.Shape{2, 8}},
	}
	g.Outputs = []graph.ValueInfo{{Name: "o0"}, {Name: "o1"}}
	g.AddInitializer("W", r.RandTensor(8, 6))
	g.AddNode("m0", "MatMul", []string{"x0", "W"}, []string{"o0"}, nil)
	g.AddNode("m1", "MatMul", []string{"x1", "W"}, []string{"o1"}, nil)
	plan, err := NewPlan(g, [][]*graph.Node{{g.Nodes[0], g.Nodes[1]}})
	if err != nil {
		t.Fatal(err)
	}
	nodes, bytes := plan.PrepackWeights()
	if nodes != 2 {
		t.Fatalf("prepacked %d nodes, want 2", nodes)
	}
	tbl := plan.prepacked()
	if tbl[g.Nodes[0]] != tbl[g.Nodes[1]] {
		t.Error("replicas of one weight got separate packings")
	}
	if want := tbl[g.Nodes[0]].Bytes(); bytes != want {
		t.Errorf("bytes = %d, want %d (shared packing counted once)", bytes, want)
	}
}

// TestPrepackSkipsFeedableInitializers: a name that is both initializer
// and graph input can be overridden by a feed, so it must not be baked in.
func TestPrepackSkipsFeedableInitializers(t *testing.T) {
	r := tensor.NewRNG(72)
	g := graph.New("feedable")
	g.Inputs = []graph.ValueInfo{
		{Name: "x", Shape: tensor.Shape{2, 4}},
		{Name: "W", Shape: tensor.Shape{4, 6}},
	}
	g.Outputs = []graph.ValueInfo{{Name: "out"}}
	g.AddInitializer("W", r.RandTensor(4, 6))
	g.AddNode("m", "MatMul", []string{"x", "W"}, []string{"out"}, nil)
	plan, err := NewPlan(g, [][]*graph.Node{{g.Nodes[0]}})
	if err != nil {
		t.Fatal(err)
	}
	if nodes, _ := plan.PrepackWeights(); nodes != 0 {
		t.Fatalf("prepacked %d nodes despite feedable weight", nodes)
	}
	// And the override actually takes effect.
	wOverride := r.RandTensor(4, 6)
	feeds := Env{"x": r.RandTensor(2, 4), "W": wOverride}
	got, err := plan.Run(feeds)
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunSequential(g, feeds)
	if err != nil {
		t.Fatal(err)
	}
	if !got["out"].Equal(want["out"]) {
		t.Error("feed-overridden weight ignored")
	}
}

// TestMeasureCostsRecordsScratch: the measurement sweep must record the
// kernel scratch sizes the memory planner consumes.
func TestMeasureCostsRecordsScratch(t *testing.T) {
	g, feeds := gemmGraph()
	mm, err := MeasureCosts(g, feeds, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if mm.ScratchNumel["g"] <= 0 || mm.ScratchNumel["m"] <= 0 {
		t.Fatalf("GEMM scratch not recorded: %v", mm.ScratchNumel)
	}
	if mm.ScratchNumel["r"] != 0 {
		t.Errorf("Relu recorded scratch %d", mm.ScratchNumel["r"])
	}
}
