package exec

import (
	"fmt"
	"strings"
)

// StuckOp pinpoints where one lane of an aborted run stopped: the next node
// it would have executed and how far through its order it got.
type StuckOp struct {
	Lane  int    `json:"lane"`
	Node  string `json:"node"`
	Op    string `json:"op"`
	Done  int    `json:"done"`
	Total int    `json:"total"`
}

func (s StuckOp) String() string {
	return fmt.Sprintf("lane %d at %s(%s) %d/%d", s.Lane, s.Node, s.Op, s.Done, s.Total)
}

// StallError annotates a cancellation-class run failure (context cancelled,
// deadline expired, watchdog kill) with the lane/op positions where the run
// unwound — the runtime analogue of the compile-time deadlock guard's stuck
// list. It wraps the underlying ctx error, so errors.Is(err,
// context.Canceled) and errors.Is(err, context.DeadlineExceeded) keep
// matching, and the diagnostic rides the error string into logs and trace
// spans.
type StallError struct {
	Err   error
	Stuck []StuckOp
}

func (e *StallError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v (stalled:", e.Err)
	for i, s := range e.Stuck {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteByte(' ')
		b.WriteString(s.String())
	}
	b.WriteByte(')')
	return b.String()
}

func (e *StallError) Unwrap() error { return e.Err }

// stuckAt lists up to four lanes that had not finished their order when the
// run aborted, each with the node it stopped before. Call only after every
// lane goroutine has exited (wg.Wait provides the happens-before edge for
// the unsynchronized doneOps reads).
func (p *Plan) stuckAt(profile *Profile) []StuckOp {
	var stuck []StuckOp
	for li, lane := range p.Lanes {
		d := int(profile.Lanes[li].doneOps)
		if d >= len(lane) {
			continue
		}
		n := lane[d]
		stuck = append(stuck, StuckOp{Lane: li, Node: n.Name, Op: n.OpType, Done: d, Total: len(lane)})
		if len(stuck) >= 4 {
			break
		}
	}
	return stuck
}
