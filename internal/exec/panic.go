package exec

import "fmt"

// PanicError wraps a panic recovered inside a lane goroutine. Kernels run
// on executor-owned goroutines, so an unrecovered kernel panic would kill
// the whole process — the opposite of the serving contract, where a bad op
// is one failed request. The lane recover converts the panic into this
// error, which then rides the normal failure path: the run's other lanes
// abort, outstanding arena buffers are abandoned, and Execute returns an
// error the serving layer classifies as a panic-caused failure.
//
// Value is the recovered panic value; Stack is the panicking goroutine's
// stack at recovery time, captured so the serving layer can log it (the
// error string itself stays one line).
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("exec: kernel panicked: %v", e.Value)
}
