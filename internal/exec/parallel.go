package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/memplan"
	"repro/internal/obs"
	"repro/internal/ops"
	"repro/internal/tensor"
)

// Plan is an executable parallel schedule: a partition of the graph's
// nodes into lanes (clusters), each lane's nodes in a dependency-respecting
// order. It is produced from a core.Clustering but typed on plain node
// slices so this package stays independent of the clustering package.
//
// Concurrency contract: once built, a Plan is immutable and Execute (and
// its Run/RunProfiled wrappers) may be called from any number of goroutines
// simultaneously on the same Plan — the serving invariant (compile once,
// serve many). All routing
// state shared between runs (lane membership, channel keys, per-node
// send/receive schedules) is computed once and only read afterwards; each
// run allocates its own channels and value environments. Mutating Graph,
// Lanes or ChanDepth after the first Run is not supported.
type Plan struct {
	Graph *graph.Graph
	// Lanes lists each cluster's nodes in execution order.
	Lanes [][]*graph.Node
	// ChanDepth is the buffer depth of cross-lane channels (default 1;
	// each channel carries exactly one tensor per run, so 1 suffices to
	// make sends non-blocking).
	ChanDepth int

	// topo is the per-plan routing structure shared by all runs. It is
	// built once on first use; building it is also what keeps concurrent
	// runs off the Graph's lazily-built producer/consumer indexes.
	topoOnce sync.Once
	topo     *planTopo

	// mem is the static memory plan plus per-node release schedule, built
	// once like topo and consulted only by arena-backed runs.
	memOnce sync.Once
	mem     *memState

	// pack is the compile-time-packed constant-weight table (ops.Prepacked
	// per GEMM-shaped node with constant operands), built once like topo;
	// every run reuses the same packed panels.
	packOnce sync.Once
	pack     map[*graph.Node]*ops.Prepacked

	// opCount/opNs are the plan's per-node execution counters: kernel
	// invocations and cumulative kernel nanoseconds, accumulated across
	// every run of the plan for the lifetime of the plan. They are the
	// always-on serving analogue of the offline MeasureCosts pass — live
	// measured per-op costs for /v1/stats and profile-guided
	// recompilation. Allocated once with the topology (dense node index,
	// see planTopo.opIdx); the record path is two atomic adds per node on
	// top of the per-node timing the profile already takes.
	opCount []atomic.Int64
	opNs    []atomic.Int64

	// tl is the plan's optional execution-timeline flight recorder (see
	// EnableTimeline): when set, one run in N is sampled into per-op spans
	// with cross-lane wait attribution. Atomic so monitoring can attach a
	// recorder to a live serving plan without stopping runs. The default
	// (nil) costs each run exactly one atomic load and each hot-loop event
	// site one nil check — the zero-allocation contract is pinned by test.
	tl atomic.Pointer[obs.Timeline]
}

// EnableTimeline attaches an execution-timeline recorder to the plan,
// sampling one run in `every` into a ring of the most recent `ring` sampled
// runs, and returns it. Replaces any previous recorder. Safe to call
// concurrently with runs; in-flight runs keep recording into the recorder
// they started with.
func (p *Plan) EnableTimeline(every, ring int) *obs.Timeline {
	t := obs.NewTimeline(every, ring)
	p.tl.Store(t)
	return t
}

// DisableTimeline detaches the plan's timeline recorder (if any); later
// runs go back to the zero-overhead path.
func (p *Plan) DisableTimeline() { p.tl.Store(nil) }

// Timeline returns the plan's attached recorder, nil when disabled.
func (p *Plan) Timeline() *obs.Timeline { return p.tl.Load() }

// LastTimeline returns the most recent sampled run's timeline, nil when
// recording is disabled or nothing has been sampled yet.
func (p *Plan) LastTimeline() *obs.RunTimeline { return p.tl.Load().Last() }

// chanKey identifies one cross-lane channel: a produced value and the lane
// consuming it.
type chanKey struct {
	value string
	lane  int
}

// inputSrc describes where one node input comes from at run time. Inputs
// produced earlier in the node's own lane need no action (evalNode finds
// them in the lane environment) and are omitted.
type inputSrc struct {
	name string
	// remote: receive from the producing lane's channel. Otherwise the
	// value is a graph input or initializer, bound from the run's base
	// environment.
	remote bool
	// from is the producing lane of a remote input (wait-span attribution
	// for the timeline recorder); 0 and meaningless when remote is false.
	from int
}

// outputDst describes what to do with one node output beyond storing it in
// the lane environment: the remote lanes to send it to and whether it is a
// graph output to capture.
type outputDst struct {
	name        string
	lanes       []int
	graphOutput bool
}

// planTopo is the run-invariant routing structure of a Plan: everything
// RunProfiled used to recompute per call that depends only on the plan
// itself. Hoisting it makes Plan.Run cheap to call per request and safe to
// call concurrently (the graph's lazy indexes are only touched here, under
// the plan's once guard).
type planTopo struct {
	laneOf map[*graph.Node]int
	// keys lists every cross-lane channel a run must allocate.
	keys []chanKey
	// ins/outs give each node its receive and send schedule. Nodes with
	// nothing to do are absent.
	ins  map[*graph.Node][]inputSrc
	outs map[*graph.Node][]outputDst
	// opIdx gives each node (by lane and lane position) its dense index
	// into the plan's op counters, and opNodes maps that index back to the
	// node — precomputed so the lane hot loop records without a map lookup.
	opIdx   [][]int32
	opNodes []*graph.Node
}

// topology returns the plan's routing structure, building it on first use.
func (p *Plan) topology() *planTopo {
	p.topoOnce.Do(func() {
		t := &planTopo{
			laneOf: make(map[*graph.Node]int, len(p.Graph.Nodes)),
			ins:    map[*graph.Node][]inputSrc{},
			outs:   map[*graph.Node][]outputDst{},
		}
		t.opIdx = make([][]int32, len(p.Lanes))
		for li, lane := range p.Lanes {
			t.opIdx[li] = make([]int32, len(lane))
			for ni, n := range lane {
				t.laneOf[n] = li
				t.opIdx[li][ni] = int32(len(t.opNodes))
				t.opNodes = append(t.opNodes, n)
			}
		}
		p.opCount = make([]atomic.Int64, len(t.opNodes))
		p.opNs = make([]atomic.Int64, len(t.opNodes))
		seenKey := map[chanKey]bool{}
		for li, lane := range p.Lanes {
			for _, n := range lane {
				for _, in := range n.Inputs {
					prod := p.Graph.Producer(in)
					switch {
					case prod == nil:
						// Graph input or initializer: bind from base env.
						t.ins[n] = append(t.ins[n], inputSrc{name: in})
					case t.laneOf[prod] != li:
						t.ins[n] = append(t.ins[n], inputSrc{name: in, remote: true, from: t.laneOf[prod]})
						key := chanKey{in, li}
						if !seenKey[key] {
							seenKey[key] = true
							t.keys = append(t.keys, key)
						}
					}
				}
				for _, outName := range n.Outputs {
					dst := outputDst{name: outName, graphOutput: p.Graph.IsGraphOutput(outName)}
					sentTo := map[int]bool{}
					for _, c := range p.Graph.Consumers(outName) {
						if cl := t.laneOf[c]; cl != li && !sentTo[cl] {
							sentTo[cl] = true
							dst.lanes = append(dst.lanes, cl)
						}
					}
					if len(dst.lanes) > 0 || dst.graphOutput {
						t.outs[n] = append(t.outs[n], dst)
					}
				}
			}
		}
		p.topo = t
	})
	return p.topo
}

// memDrop is one reference-count decrement owed when a node completes: the
// managed value's dense index in the run's refs array, and its name (to
// find the tensor in the completing lane's environment).
type memDrop struct {
	idx   int
	value string
}

// memState is the run-invariant arena-release schedule derived from the
// static memory plan (internal/memplan): per node, which managed values
// lose a reference when that node finishes. Like planTopo it is computed
// once per plan and only read afterwards; each run owns a mutable copy of
// refs0.
type memState struct {
	plan *memplan.Plan
	// refs0 seeds each run's reference counts. Zero-use values are seeded
	// with 1 and dropped by their own producer, so every managed value is
	// released by exactly one code path.
	refs0 []int32
	// drops lists the decrements owed at each node's completion: one per
	// managed input occurrence, plus one per zero-use output.
	drops map[*graph.Node][]memDrop
	// inplace marks nodes executed via ops.RunInPlace: the memory plan
	// proves their first input dies with them (memplan.CanWriteInPlace)
	// and the kernel layer has an in-place path (ops.CanRunInPlace). The
	// input buffer's ownership transfers to the output, so no drop is
	// scheduled for it — it is released when the output dies.
	inplace map[*graph.Node]bool
}

// memory returns the plan's release schedule, building it on first use.
// A nil result (analysis failure) disables releasing; arena runs then
// still allocate from the arena but never recycle — safe, just slower.
// NewPlan-validated plans always analyze cleanly.
func (p *Plan) memory() *memState {
	p.memOnce.Do(func() {
		mp, err := memplan.Build(p.Graph, p.Lanes)
		if err != nil {
			return
		}
		m := &memState{
			plan:    mp,
			refs0:   mp.InitialRefs(),
			drops:   make(map[*graph.Node][]memDrop, len(p.Graph.Nodes)),
			inplace: make(map[*graph.Node]bool),
		}
		for _, lane := range p.Lanes {
			for _, n := range lane {
				// In-place execution needs both the liveness proof and a
				// kernel path. It composes with the prepack table: a
				// FusedElementwise node with a decoded stage program runs
				// via ops.RunPrepackedInPlace (weight-packed ops are never
				// in-place capable).
				inplace := ops.CanRunInPlace(n.OpType) && mp.CanWriteInPlace(n.Name)
				m.inplace[n] = inplace
				for ii, in := range n.Inputs {
					if inplace && ii == 0 {
						continue // ownership transfers to the output
					}
					if i := mp.IndexOf(in); i >= 0 {
						m.drops[n] = append(m.drops[n], memDrop{i, in})
					}
				}
				for _, out := range n.Outputs {
					if i := mp.IndexOf(out); i >= 0 && mp.UseCount(out) == 0 {
						m.refs0[i] = 1
						m.drops[n] = append(m.drops[n], memDrop{i, out})
					}
				}
			}
		}
		p.mem = m
	})
	return p.mem
}

// MemoryPlan returns the plan's static memory plan (liveness, reuse slots,
// peak estimates), building it on first use. Nil when the graph defies
// analysis, which cannot happen for plans built by NewPlan/NewPlanOrdered.
func (p *Plan) MemoryPlan() *memplan.Plan {
	if m := p.memory(); m != nil {
		return m.plan
	}
	return nil
}

// packKey identifies one distinct packing: the weight tensor plus the
// attributes that shape its packed layout. Hyperclustered graphs
// replicate every GEMM/Conv node per sample while sharing the weight
// initializers, so memoizing on this key keeps one packed copy per
// weight instead of one per replica.
type packKey struct {
	op     string
	weight *tensor.Tensor
	transB bool
	groups int
}

// prepacked returns the plan's constant-weight packing table, building it
// on first use: every GEMM-shaped node whose weight operand is a graph
// initializer gets its panels packed once, here, so no run ever repacks
// them. Names that are also declared graph inputs are skipped — a feed
// could override the initializer value there.
func (p *Plan) prepacked() map[*graph.Node]*ops.Prepacked {
	p.packOnce.Do(func() {
		tbl := map[*graph.Node]*ops.Prepacked{}
		shared := map[packKey]*ops.Prepacked{}
		for _, n := range p.Graph.Nodes {
			if n.OpType == "FusedElementwise" {
				// No constant operands to pack — the prepared state is the
				// decoded stage program, one per node (replicas are cheap).
				if pp := ops.PrepackWeights(n.OpType, n.Attrs, make([]*tensor.Tensor, len(n.Inputs))); pp != nil {
					tbl[n] = pp
				}
				continue
			}
			constIn := make([]*tensor.Tensor, len(n.Inputs))
			any := false
			for i, name := range n.Inputs {
				if t := p.Graph.Initializers[name]; t != nil && !p.Graph.IsGraphInput(name) {
					constIn[i] = t
					any = true
				}
			}
			if !any || len(constIn) < 2 || constIn[1] == nil {
				continue
			}
			key := packKey{
				op:     n.OpType,
				weight: constIn[1],
				transB: n.Attrs.Int("transB", 0) != 0,
				groups: n.Attrs.Int("group", 1),
			}
			if pp, seen := shared[key]; seen {
				if pp != nil {
					tbl[n] = pp
				}
				continue
			}
			pp := ops.PrepackWeights(n.OpType, n.Attrs, constIn)
			shared[key] = pp
			if pp != nil {
				tbl[n] = pp
			}
		}
		p.pack = tbl
	})
	return p.pack
}

// PrepackWeights builds the plan's compile-time prepack table (idempotent;
// Compile calls it eagerly so Session.Run never pays it) and reports how
// many nodes got packed weight operands and their total packed bytes.
// FusedElementwise entries (decoded stage programs, no weight panels) are
// excluded from the count.
func (p *Plan) PrepackWeights() (nodes int, bytes int64) {
	tbl := p.prepacked()
	seen := make(map[*ops.Prepacked]bool, len(tbl))
	for _, pp := range tbl {
		if !pp.HasWeights() {
			continue
		}
		nodes++
		if !seen[pp] {
			seen[pp] = true
			bytes += pp.Bytes() // replicas share one packing; count it once
		}
	}
	return nodes, bytes
}

// OpTotals aggregates the plan's per-node execution counters by operator
// type: invocations and cumulative kernel time since the plan was built,
// across every run, sorted by cumulative time descending. It reports where
// the model's execution time actually goes — the live measured-cost view
// the static cost model (the paper's Table I) approximates at compile time.
// Safe to call concurrently with runs; a snapshot racing active lanes may
// miss their in-flight nodes.
func (p *Plan) OpTotals() []obs.OpTotal {
	topo := p.topology()
	agg := make(map[string]obs.OpTotal)
	for i, n := range topo.opNodes {
		c := p.opCount[i].Load()
		if c == 0 {
			continue
		}
		t := agg[n.OpType]
		t.Op = n.OpType
		t.Count += c
		t.TotalNs += p.opNs[i].Load()
		agg[n.OpType] = t
	}
	if len(agg) == 0 {
		return nil
	}
	out := make([]obs.OpTotal, 0, len(agg))
	for _, t := range agg {
		out = append(out, t)
	}
	obs.SortOpTotals(out)
	return out
}

// message is one cross-cluster tensor transfer.
type message struct {
	value string
	t     *tensor.Tensor
}

// laneStats accumulates the per-lane profile the paper's "profile
// database" records: busy time computing vs slack time blocked on receives.
type laneStats struct {
	Busy  time.Duration
	Slack time.Duration
	Sends int
	Recvs int
	// doneOps counts this lane's completed nodes. Written only by the
	// owning lane goroutine; read after wg.Wait (a happens-before edge),
	// so no atomics are needed. It feeds the stall diagnostic attached to
	// cancellation-class failures — see StallError.
	doneOps int32
}

// Profile is the execution trace of one parallel run.
type Profile struct {
	Lanes []laneStats
	Wall  time.Duration
}

// TotalSlack sums blocked-on-receive time across lanes; hyperclustering
// (Section III-E) exists to fill exactly this.
func (p *Profile) TotalSlack() time.Duration {
	var s time.Duration
	for _, l := range p.Lanes {
		s += l.Slack
	}
	return s
}

// NewPlan builds a Plan from cluster node lists, reordering each lane into
// a dependency-respecting order (global topological position) and
// validating that the lanes partition the graph.
func NewPlan(g *graph.Graph, lanes [][]*graph.Node) (*Plan, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	pos := make(map[*graph.Node]int, len(order))
	for i, n := range order {
		pos[n] = i
	}
	seen := map[*graph.Node]bool{}
	total := 0
	sorted := make([][]*graph.Node, len(lanes))
	for i, lane := range lanes {
		cp := append([]*graph.Node(nil), lane...)
		insertionSortByPos(cp, pos)
		sorted[i] = cp
		for _, n := range cp {
			if seen[n] {
				return nil, fmt.Errorf("exec: node %s appears in multiple lanes", n.Name)
			}
			seen[n] = true
			total++
		}
	}
	if total != len(g.Nodes) {
		return nil, fmt.Errorf("exec: lanes cover %d nodes, graph has %d", total, len(g.Nodes))
	}
	return &Plan{Graph: g, Lanes: sorted, ChanDepth: 1}, nil
}

// NewPlanOrdered builds a Plan that preserves the given lane orders exactly
// (hyperclustering's sample interleaving is meaningful order), verifying
// that the lanes partition the graph and that executing each lane in its
// stated order cannot deadlock across lanes.
func NewPlanOrdered(g *graph.Graph, lanes [][]*graph.Node) (*Plan, error) {
	seen := map[*graph.Node]bool{}
	total := 0
	for _, lane := range lanes {
		for _, n := range lane {
			if seen[n] {
				return nil, fmt.Errorf("exec: node %s appears in multiple lanes", n.Name)
			}
			seen[n] = true
			total++
		}
	}
	if total != len(g.Nodes) {
		return nil, fmt.Errorf("exec: lanes cover %d nodes, graph has %d", total, len(g.Nodes))
	}
	p := &Plan{Graph: g, Lanes: lanes, ChanDepth: 1}
	if err := p.checkFeasible(); err != nil {
		return nil, err
	}
	return p, nil
}

// checkFeasible runs a zero-cost progress simulation: every lane advances
// through its order whenever its next node's predecessors have executed.
// If the system stalls, the executor would deadlock, so the plan is
// rejected.
func (p *Plan) checkFeasible() error {
	done := make(map[*graph.Node]bool, len(p.Graph.Nodes))
	idx := make([]int, len(p.Lanes))
	remaining := 0
	for _, lane := range p.Lanes {
		remaining += len(lane)
	}
	for remaining > 0 {
		progressed := false
		for li, lane := range p.Lanes {
			for idx[li] < len(lane) {
				n := lane[idx[li]]
				ready := true
				for _, pred := range p.Graph.Predecessors(n) {
					if !done[pred] {
						ready = false
						break
					}
				}
				if !ready {
					break
				}
				done[n] = true
				idx[li]++
				remaining--
				progressed = true
			}
		}
		if !progressed {
			var stuck []string
			for li, lane := range p.Lanes {
				if idx[li] < len(lane) {
					stuck = append(stuck, lane[idx[li]].Name)
					if len(stuck) >= 4 {
						break
					}
				}
			}
			return fmt.Errorf("exec: lane order would deadlock at %v", stuck)
		}
	}
	return nil
}

func insertionSortByPos(ns []*graph.Node, pos map[*graph.Node]int) {
	for i := 1; i < len(ns); i++ {
		for j := i; j > 0 && pos[ns[j]] < pos[ns[j-1]]; j-- {
			ns[j], ns[j-1] = ns[j-1], ns[j]
		}
	}
}

// Run executes the plan: one goroutine per lane, channels per cross-lane
// (value, consumer-lane) pair, mirroring the paper's Algorithm 4 runtime of
// queue.put/queue.get message passing between Python processes. Returns
// the graph outputs.
//
// Run is safe for concurrent use: many goroutines may Run the same Plan at
// once, each call with its own channels and environments (see the Plan
// concurrency contract). Cancellation-aware callers should use Execute.
func (p *Plan) Run(feeds Env) (Env, error) {
	out, _, err := p.Execute(context.Background(), feeds, nil)
	return out, err
}

// RunArena is Run with arena-backed tensor memory: every kernel output is
// allocated from ar, and each intermediate's storage is returned to ar the
// moment its statically-known last consumer finishes (the reuse plan of
// internal/memplan). Graph outputs are never recycled — they escape to the
// caller as ordinary heap-owned tensors.
//
// The arena must not be shared between concurrent runs: the serving
// invariant extends to "each run owns its arena" — many goroutines may
// RunArena the same Plan at once as long as every call passes a different
// (or pooled, currently-idle) arena. Keeping one arena alive across
// sequential runs is exactly what makes steady-state inference allocation-
// free for intermediates.
func (p *Plan) RunArena(feeds Env, ar *tensor.Arena) (Env, error) {
	out, _, err := p.Execute(context.Background(), feeds, ar)
	return out, err
}

// RunProfiled is Run plus the per-lane busy/slack profile.
func (p *Plan) RunProfiled(feeds Env) (Env, *Profile, error) {
	return p.Execute(context.Background(), feeds, nil)
}

// RunProfiledArena is RunArena plus the per-lane busy/slack profile.
func (p *Plan) RunProfiledArena(feeds Env, ar *tensor.Arena) (Env, *Profile, error) {
	return p.Execute(context.Background(), feeds, ar)
}

// Execute is the plan's core entry point: one parallel run under ctx, with
// optional arena-backed tensor memory (nil ar = heap) and the per-lane
// busy/slack profile. All other run methods are thin wrappers over it.
//
// Cancellation is cooperative: lanes observe ctx between operator kernels
// and while blocked on cross-lane receives, so a cancelled or deadline-
// expired run unwinds within one kernel's duration. The unwind is clean —
// every lane goroutine exits before Execute returns (no leaks), and the
// arena stays consistent: buffers are only ever recycled after their global
// reference count reaches zero, so nothing still reachable is released and
// the arena is immediately reusable by the next run. Tensors that were in
// flight when the run aborted are simply dropped to the garbage collector.
// On cancellation the returned error is ctx.Err() (context.Canceled or
// context.DeadlineExceeded), unwrapped, so callers can errors.Is it.
func (p *Plan) Execute(ctx context.Context, feeds Env, ar *tensor.Arena) (Env, *Profile, error) {
	start := time.Now()
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	done := ctx.Done()
	base, err := seedEnv(p.Graph, feeds)
	if err != nil {
		return nil, nil, err
	}
	topo := p.topology()
	pack := p.prepacked()
	depth := p.ChanDepth
	if depth < 1 {
		depth = 1
	}
	// Timeline sampling decision for this run: cap stays nil on the default
	// path (no recorder, or an unsampled run), and every record site below
	// is a nil-safe no-op then — the hot loop's zero-allocation contract.
	rec := p.tl.Load().StartRun(len(p.Lanes))

	// Arena mode: a private copy of the memory plan's reference counts.
	// Lane goroutines decrement the counts of a node's managed inputs once
	// the node completes; whoever performs a value's final decrement owns
	// the release. alloc is the allocator handed to every kernel.
	var (
		mem   *memState
		refs  []int32
		alloc tensor.Allocator
	)
	if ar != nil {
		alloc = ar
		if mem = p.memory(); mem != nil {
			refs = append([]int32(nil), mem.refs0...)
		}
	}

	// One channel per (produced value, consuming lane) pair, freshly
	// allocated per run so concurrent runs never share messages. The
	// producer sends once; the consumer receives once and caches it in its
	// local environment, so multiple local consumers are satisfied.
	chans := make(map[chanKey]chan message, len(topo.keys))
	for _, key := range topo.keys {
		chans[key] = make(chan message, depth)
	}

	profile := &Profile{Lanes: make([]laneStats, len(p.Lanes))}
	errs := make([]error, len(p.Lanes))
	var (
		outMu   sync.Mutex
		outVals = make(Env, len(p.Graph.Outputs))
	)
	// abort is closed on the first lane failure so blocked receivers in
	// other lanes unblock instead of deadlocking.
	abort := make(chan struct{})
	var abortOnce sync.Once
	fail := func(li int, err error) {
		errs[li] = err
		abortOnce.Do(func() { close(abort) })
	}
	var wg sync.WaitGroup
	for li, lane := range p.Lanes {
		wg.Add(1)
		go func(li int, lane []*graph.Node) {
			defer wg.Done()
			// A panicking kernel must not take the process down. Registered
			// after wg.Done so it runs first: the failure is recorded (and
			// the abort broadcast) before the lane is counted finished.
			defer func() {
				if r := recover(); r != nil {
					// An arena budget denial is raised as a panic (the
					// Allocator interface has no error return) but it is a
					// resource verdict, not a bug: unwind it as an ordinary
					// lane failure so the run aborts like a cancellation.
					if be, ok := r.(*tensor.BudgetError); ok {
						fail(li, be)
						return
					}
					fail(li, &PanicError{Value: r, Stack: debug.Stack()})
				}
			}()
			stats := &profile.Lanes[li]
			// Lane-local environment: shared read-only base + local values.
			env := make(Env, len(lane)*2)
			for ni, n := range lane {
				// Observe cancellation between ops: one non-blocking poll per
				// node, so an aborted run stops within a kernel's duration.
				if done != nil {
					select {
					case <-done:
						fail(li, ctx.Err())
						return
					default:
					}
				}
				// Bind base values and receive remote inputs not yet local.
				for _, src := range topo.ins[n] {
					if _, ok := env[src.name]; ok {
						continue
					}
					if !src.remote {
						if t, ok := base[src.name]; ok {
							env[src.name] = t
						}
						continue // else evalNode reports the missing input
					}
					ch := chans[chanKey{src.name, li}]
					if ch == nil {
						fail(li, fmt.Errorf("exec: lane %d: no channel for %q", li, src.name))
						return
					}
					waitStart := time.Now()
					select {
					case msg := <-ch:
						wait := time.Since(waitStart)
						stats.Slack += wait
						stats.Recvs++
						env[msg.value] = msg.t
						rec.Wait(li, src.from, src.name, waitStart, wait)
					case <-abort:
						return
					case <-done: // nil (blocks forever) without a cancelable ctx
						fail(li, ctx.Err())
						return
					}
				}
				busyStart := time.Now()
				inplace := refs != nil && mem.inplace[n]
				if err := evalNode(p.Graph, n, env, alloc, pack[n], inplace); err != nil {
					fail(li, err)
					return
				}
				busy := time.Since(busyStart)
				stats.Busy += busy
				// Accumulate the plan's per-node execution counters (the
				// timing above is already taken for the profile; this adds
				// two lock-free atomic ops and no allocation).
				idx := topo.opIdx[li][ni]
				p.opCount[idx].Add(1)
				p.opNs[idx].Add(int64(busy))
				rec.Op(li, n.Name, n.OpType, busyStart, busy)
				// Send outputs needed by remote lanes; capture graph outputs.
				for _, dst := range topo.outs[n] {
					for _, cl := range dst.lanes {
						chans[chanKey{dst.name, cl}] <- message{dst.name, env[dst.name]}
						stats.Sends++
						if rec != nil {
							rec.Send(li, cl, dst.name, time.Now())
						}
					}
					if dst.graphOutput {
						outMu.Lock()
						outVals[dst.name] = env[dst.name]
						outMu.Unlock()
					}
				}
				// Release the node's dead inputs (and dead-on-arrival
				// outputs) back to the run's arena. This runs after the
				// sends: a node's own outputs still carry their consumers'
				// references, so only values whose global count reaches
				// zero here — no reader left in any lane — are recycled.
				if refs != nil {
					for _, d := range mem.drops[n] {
						if atomic.AddInt32(&refs[d.idx], -1) == 0 {
							tensor.ReleaseData(ar, env[d.value])
						}
					}
				}
				stats.doneOps = int32(ni + 1)
			}
		}(li, lane)
	}
	wg.Wait()
	// Kernel failures outrank cancellation: a lane that died for a real
	// reason is the root cause even if the caller also gave up waiting.
	// Pure cancellations surface as the bare ctx error.
	var runErr error
	for li, err := range errs {
		switch {
		case err == nil:
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			if runErr == nil {
				runErr = err
			}
		default:
			runErr = fmt.Errorf("exec: lane %d failed: %w", li, err)
		}
		if runErr != nil && !errors.Is(runErr, context.Canceled) && !errors.Is(runErr, context.DeadlineExceeded) {
			break
		}
	}
	if runErr != nil {
		// Cancellation-class aborts carry the stall diagnostic: which op
		// each unfinished lane was at when the run unwound. This is the
		// runtime twin of checkFeasible's compile-time stuck list, and it
		// rides the error into logs and /v1/trace spans. Allocation happens
		// only on this already-failed path.
		if errors.Is(runErr, context.Canceled) || errors.Is(runErr, context.DeadlineExceeded) {
			if stuck := p.stuckAt(profile); len(stuck) > 0 {
				runErr = &StallError{Err: runErr, Stuck: stuck}
			}
		}
		// The unwound run abandons its in-flight tensors to the GC; take
		// their bytes out of the arena's in-use accounting so the gauge
		// reflects reality. Safe here: every lane has exited.
		if ar != nil {
			ar.AbandonOutstanding()
		}
		// A failed sampled run still commits its partial timeline (marked
		// incomplete): seeing where lanes stopped is diagnostic signal.
		rec.Commit(time.Since(start), false)
		return nil, nil, runErr
	}

	final := make(Env, len(p.Graph.Outputs))
	for k, v := range outVals {
		final[k] = v
		// Node-produced graph outputs escape to the caller: drop them from
		// the arena's working-set accounting so long-lived arenas report
		// the real steady-state footprint, not a per-request ratchet.
		if ar != nil {
			ar.NoteEscape(v.Data())
		}
	}
	for _, o := range p.Graph.Outputs {
		if _, ok := final[o.Name]; !ok {
			if t, ok := base[o.Name]; ok {
				final[o.Name] = t // output aliased to an input/initializer
				continue
			}
			return nil, nil, fmt.Errorf("exec: graph output %q was not produced", o.Name)
		}
	}
	profile.Wall = time.Since(start)
	rec.Commit(profile.Wall, true)
	return final, profile, nil
}
