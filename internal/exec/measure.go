package exec

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tensor"
)

// MeasuredModel is a cost.Model whose node costs are real measured kernel
// durations (in microseconds) from executing the graph on this machine.
//
// The paper's runtime tables were produced on a 12-core Xeon; when the
// reproduction host lacks multiple cores (or to get load-independent
// numbers anywhere), the discrete-event simulator replays these measured
// costs on a simulated k-core machine. This keeps "who wins by how much"
// grounded in genuine kernel performance instead of static weights.
type MeasuredModel struct {
	// ByName maps node names to measured duration in microseconds.
	ByName map[string]float64
	// Edge is the fixed per-message overhead in microseconds charged on
	// cross-cluster dependences (the queue handoff plus scheduler wake).
	Edge float64
	// BytesPerMicro, when > 0, adds a size-dependent term: a message
	// carrying B bytes costs Edge + B/BytesPerMicro microseconds. The
	// paper's Python process queues pickle tensors, so shipping a large
	// activation map costs far more than a BERT-sized vector; this is what
	// makes Squeezenet's big cross-cluster maps a net loss (Table IV row 1)
	// while BERT's small ones stay cheap.
	BytesPerMicro float64
	// OutBytes maps node names to the byte size of their first output,
	// recorded during measurement.
	OutBytes map[string]float64
	// ValueNumel maps every produced value name to its element count,
	// recorded during measurement — the sizes input the memory planner's
	// Estimate wants, at no extra execution.
	ValueNumel map[string]int
	// ScratchNumel maps node names to the transient kernel scratch (im2col
	// patch matrices, call-time GEMM packing) the node draws from the
	// run's allocator, in elements — the memory planner's scratch-sizing
	// input (memplan.Plan.EstimateWithScratch).
	ScratchNumel map[string]int
	// Default covers nodes not measured (e.g. clones added after
	// measurement): microseconds.
	Default float64
}

// NodeCost implements cost.Model.
func (m *MeasuredModel) NodeCost(n *graph.Node) float64 {
	if d, ok := m.ByName[n.Name]; ok {
		return d
	}
	return m.Default
}

// EdgeCost implements cost.Model: the fixed message overhead. Size-aware
// callers (the simulator) use EdgeCostBetween instead.
func (m *MeasuredModel) EdgeCost() float64 { return m.Edge }

// EdgeCostBetween implements cost.EdgeCoster: fixed overhead plus the
// serialization cost of the producer's output tensor.
func (m *MeasuredModel) EdgeCostBetween(pred, _ *graph.Node) float64 {
	c := m.Edge
	if m.BytesPerMicro > 0 {
		if b, ok := m.OutBytes[pred.Name]; ok {
			c += b / m.BytesPerMicro
		}
	}
	return c
}

// TotalMicros sums all measured node durations — the modelled sequential
// execution time.
func (m *MeasuredModel) TotalMicros() float64 {
	var t float64
	for _, d := range m.ByName {
		t += d
	}
	return t
}

// MeasureCosts executes the graph sequentially `reps` times with the given
// feeds, timing every node, and returns the per-node median-of-means model.
// edgeMicros sets the modelled message overhead; pass <= 0 for the default
// 3µs (measured Go channel handoff incl. scheduler wake is ~1µs; the
// paper's Python process queues cost far more, so 3µs is conservative in
// Ramiel's favor being the faster runtime).
func MeasureCosts(g *graph.Graph, feeds Env, reps int, edgeMicros float64) (*MeasuredModel, error) {
	return MeasureCostsCtx(context.Background(), g, feeds, reps, edgeMicros)
}

// MeasureCostsCtx is MeasureCosts under a context: a measurement sweep over
// a large model is many full sequential executions, so interactive callers
// (or a serving daemon profiling in the background) can abort it between
// kernels. Cancellation surfaces as the bare ctx error.
func MeasureCostsCtx(ctx context.Context, g *graph.Graph, feeds Env, reps int, edgeMicros float64) (*MeasuredModel, error) {
	if reps < 1 {
		reps = 1
	}
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	acc := make(map[string]float64, len(order))
	numel := make(map[string]int, len(order))
	scratch := make(map[string]int)
	for r := 0; r < reps; r++ {
		env, err := seedEnv(g, feeds)
		if err != nil {
			return nil, err
		}
		for _, n := range order {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if r == 0 {
				if s := nodeScratch(n, env); s > 0 {
					scratch[n.Name] = s
				}
			}
			t0 := time.Now()
			if err := evalNode(g, n, env, nil, nil, false); err != nil {
				return nil, fmt.Errorf("exec: measuring %s: %w", n.Name, err)
			}
			acc[n.Name] += float64(time.Since(t0)) / float64(time.Microsecond)
			if r == 0 {
				for _, out := range n.Outputs {
					if t := env[out]; t != nil {
						numel[out] = t.Numel()
					}
				}
			}
		}
	}
	// OutBytes is a per-node view of the same measurements: the first
	// output's size, derived from numel so the two maps cannot diverge.
	outBytes := make(map[string]float64, len(order))
	for _, n := range order {
		if len(n.Outputs) > 0 {
			if e, ok := numel[n.Outputs[0]]; ok {
				outBytes[n.Name] = float64(4 * e)
			}
		}
	}
	byName := make(map[string]float64, len(acc))
	var sum float64
	for name, total := range acc {
		d := total / float64(reps)
		if d < 0.05 {
			d = 0.05 // floor: even a no-op dispatch costs something
		}
		byName[name] = d
		sum += d
	}
	if edgeMicros <= 0 {
		edgeMicros = 3
	}
	def := 1.0
	if len(byName) > 0 {
		def = sum / float64(len(byName))
	}
	return &MeasuredModel{ByName: byName, Edge: edgeMicros, OutBytes: outBytes,
		ValueNumel: numel, ScratchNumel: scratch, Default: def}, nil
}

// nodeScratch sizes one node's kernel scratch from its bound inputs.
func nodeScratch(n *graph.Node, env Env) int {
	in := make([]*tensor.Tensor, len(n.Inputs))
	for i, name := range n.Inputs {
		t, ok := env[name]
		if !ok {
			return 0
		}
		in[i] = t
	}
	return ops.ScratchElems(n.OpType, n.Attrs, in)
}

// PaperEquivalentQueues configures m to model the paper's Python
// multiprocessing queues: a fixed wake-up overhead plus pickle-rate
// serialization of the shipped tensor (~150 bytes/µs).
func (m *MeasuredModel) PaperEquivalentQueues() *MeasuredModel {
	m.Edge = 20
	m.BytesPerMicro = 150
	return m
}

// IntraOpConfig models downstream intra-operator parallelism for the
// simulator (Table V): heavy kernels scale by Amdahl's law with parallel
// fraction Frac across Threads workers, and when lanes*Threads exceeds
// Cores the whole machine slows by the oversubscription ratio.
type IntraOpConfig struct {
	// Threads is the intra-op thread count (OMP_NUM_THREADS analogue).
	Threads int
	// Cores is the simulated machine's core count.
	Cores int
	// Frac is the parallelizable fraction of heavy kernels (default 0.85).
	Frac float64
}

// scaledModel wraps a base model applying intra-op scaling.
type scaledModel struct {
	base  *MeasuredModel
	edge  float64
	conf  IntraOpConfig
	over  float64
	heavy func(*graph.Node) bool
}

func (s *scaledModel) NodeCost(n *graph.Node) float64 {
	c := s.base.NodeCost(n)
	if s.conf.Threads > 1 && s.heavy(n) {
		f := s.conf.Frac
		t := float64(s.conf.Threads)
		c = c * ((1 - f) + f/t)
	}
	return c * s.over
}

func (s *scaledModel) EdgeCost() float64 { return s.edge * s.over }

// EdgeCostBetween forwards the base model's size-aware message cost,
// scaled by the oversubscription factor.
func (s *scaledModel) EdgeCostBetween(pred, succ *graph.Node) float64 {
	return s.base.EdgeCostBetween(pred, succ) * s.over
}

// WithIntraOp derives a model that scales heavy-op costs by intra-op
// parallelism and applies an oversubscription penalty when lanes*threads
// exceeds the simulated core count.
func WithIntraOp(m *MeasuredModel, conf IntraOpConfig, lanes int) cost.Model {
	if conf.Threads < 1 {
		conf.Threads = 1
	}
	if conf.Cores < 1 {
		conf.Cores = 12
	}
	if conf.Frac <= 0 || conf.Frac > 1 {
		conf.Frac = 0.85
	}
	over := 1.0
	demand := lanes * conf.Threads
	if demand > conf.Cores {
		over = float64(demand) / float64(conf.Cores)
	}
	return &scaledModel{
		base: m,
		edge: m.Edge,
		conf: conf,
		over: over,
		heavy: func(n *graph.Node) bool {
			switch n.OpType {
			case "Conv", "MatMul", "Gemm", "MaxPool", "AveragePool", "BatchNormalization":
				return true
			}
			return false
		},
	}
}
