// Package exec runs dataflow graphs: a sequential reference executor, the
// parallel executor that maps each cluster onto its own goroutine with
// buffered channels carrying cross-cluster tensor dependences (the Go
// equivalent of the paper's Python processes and message queues), and a
// deterministic discrete-event simulator driven by the static cost model
// for reproducible makespan comparisons.
package exec

import (
	"context"
	"fmt"

	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tensor"
)

// Env binds value names to tensors.
type Env map[string]*tensor.Tensor

// RunSequential executes the graph in topological order on the calling
// goroutine and returns the graph outputs. It is both the correctness
// reference for the parallel executor and the baseline for every speedup
// the paper reports.
func RunSequential(g *graph.Graph, feeds Env) (Env, error) {
	return RunSequentialCtx(context.Background(), g, feeds)
}

// RunSequentialCtx is RunSequential under a context: cancellation is
// observed between operator kernels, mirroring the parallel executor's
// cooperative unwind, and surfaces as the bare ctx error.
func RunSequentialCtx(ctx context.Context, g *graph.Graph, feeds Env) (Env, error) {
	env, err := runAllSequential(ctx, g, feeds)
	if err != nil {
		return nil, err
	}
	return collectOutputs(g, env)
}

// runAllSequential executes every node in topological order and returns
// the full value environment.
func runAllSequential(ctx context.Context, g *graph.Graph, feeds Env) (Env, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	env, err := seedEnv(g, feeds)
	if err != nil {
		return nil, err
	}
	for _, n := range order {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := evalNode(g, n, env, nil, nil, false); err != nil {
			return nil, err
		}
	}
	return env, nil
}

// ValueSizes executes g sequentially with feeds and records the element
// count of every node-produced value. Shapes are not statically inferable
// in this IR, so one reference execution is how the memory planner's peak
// estimates (memplan.Plan.Estimate) get their sizes.
func ValueSizes(g *graph.Graph, feeds Env) (map[string]int, error) {
	env, err := runAllSequential(context.Background(), g, feeds)
	if err != nil {
		return nil, err
	}
	sizes := make(map[string]int)
	for _, n := range g.Nodes {
		for _, out := range n.Outputs {
			if t, ok := env[out]; ok {
				sizes[out] = t.Numel()
			}
		}
	}
	return sizes, nil
}

// seedEnv builds the initial value environment from initializers + feeds.
func seedEnv(g *graph.Graph, feeds Env) (Env, error) {
	env := make(Env, len(g.Nodes)*2)
	for name, t := range g.Initializers {
		env[name] = t
	}
	for _, in := range g.Inputs {
		t, ok := feeds[in.Name]
		if !ok {
			return nil, fmt.Errorf("exec: missing feed for graph input %q", in.Name)
		}
		if in.Shape != nil && len(in.Shape) > 0 && !t.Shape().Equal(in.Shape) {
			return nil, fmt.Errorf("exec: feed %q has shape %v, graph declares %v", in.Name, t.Shape(), in.Shape)
		}
		env[in.Name] = t
	}
	return env, nil
}

// evalNode runs one node's kernel against env, storing its outputs. The
// allocator (nil = heap) reaches every kernel output allocation, so an
// arena-backed run recycles intermediate storage. pp carries the node's
// compile-time-packed constant weights (plan runs); nil means the ordinary
// registry kernel, which packs at call time and computes identical values.
// inplace (arena runs only) means the memory plan proved the node's first
// input dies here: the kernel writes the output into the input's buffer
// (ops.RunInPlace), and the executor schedules no release for the input —
// its storage lives on as the output.
func evalNode(g *graph.Graph, n *graph.Node, env Env, a tensor.Allocator, pp *ops.Prepacked, inplace bool) error {
	inputs := make([]*tensor.Tensor, len(n.Inputs))
	for i, name := range n.Inputs {
		t, ok := env[name]
		if !ok {
			return fmt.Errorf("exec: node %s: input %q not available", n.Name, name)
		}
		inputs[i] = t
	}
	var outs []*tensor.Tensor
	var err error
	switch {
	case pp != nil && inplace:
		outs, err = ops.RunPrepackedInPlace(n.OpType, inputs, n.Attrs, a, pp)
	case pp != nil:
		outs, err = ops.RunPrepacked(n.OpType, inputs, n.Attrs, a, pp)
	case inplace:
		outs, err = ops.RunInPlace(n.OpType, inputs, n.Attrs, a)
	default:
		kernel, kerr := ops.LookupAlloc(n.OpType)
		if kerr != nil {
			return fmt.Errorf("exec: node %s: %w", n.Name, kerr)
		}
		outs, err = kernel(inputs, n.Attrs, a)
	}
	if err != nil {
		return fmt.Errorf("exec: node %s: %w", n.Name, err)
	}
	if len(outs) < len(n.Outputs) {
		return fmt.Errorf("exec: node %s: kernel returned %d outputs, graph declares %d",
			n.Name, len(outs), len(n.Outputs))
	}
	for i, name := range n.Outputs {
		env[name] = outs[i]
	}
	return nil
}

func collectOutputs(g *graph.Graph, env Env) (Env, error) {
	out := make(Env, len(g.Outputs))
	for _, o := range g.Outputs {
		t, ok := env[o.Name]
		if !ok {
			return nil, fmt.Errorf("exec: graph output %q was not produced", o.Name)
		}
		out[o.Name] = t
	}
	return out, nil
}
