package exec

import (
	"sync"
	"testing"

	"repro/internal/graph"
)

// TestPlanRunConcurrent exercises the serving invariant: one compiled Plan
// must serve many simultaneous Run calls (run with -race). Every call gets
// its own channels and environments; only the read-only topology is shared.
func TestPlanRunConcurrent(t *testing.T) {
	g, feeds := smallGraph()
	ref, err := RunSequential(g, feeds)
	if err != nil {
		t.Fatal(err)
	}
	// Two lanes with a cross-lane dependence each way: Neg runs alone, its
	// output feeds lane 0's Add.
	var lane0, lane1 []*graph.Node
	for _, n := range g.Nodes {
		if n.Name == "n" {
			lane1 = append(lane1, n)
		} else {
			lane0 = append(lane0, n)
		}
	}
	plan, err := NewPlan(g, [][]*graph.Node{lane0, lane1})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines, iters = 16, 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				out, err := plan.Run(feeds)
				if err != nil {
					errs <- err
					return
				}
				if !out["out"].Equal(ref["out"]) {
					t.Errorf("concurrent run diverged from sequential reference")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestPlanRunProfiledConcurrent does the same through the profiled path,
// which additionally shares the per-plan topology with plain Run.
func TestPlanRunProfiledConcurrent(t *testing.T) {
	g, feeds := smallGraph()
	plan, err := NewPlan(g, [][]*graph.Node{g.Nodes})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if _, _, err := plan.RunProfiled(feeds); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
