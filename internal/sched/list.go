package sched

import (
	"fmt"
	"time"

	"repro/internal/cost"
	"repro/internal/graph"
)

// ListSchedule runs a classic earliest-finish-time list scheduler onto k
// lanes: nodes are visited in topological order and each is placed on the
// lane where it finishes earliest (earliest-finish-time placement),
// charging the model's edge cost for cross-lane dependences. It is the
// conventional DAG-scheduling baseline between LC (cheapest) and IOS
// (most exhaustive).
func ListSchedule(g *graph.Graph, m cost.Model, k int) (*Schedule, [][]*graph.Node, error) {
	start := time.Now()
	if k < 1 {
		return nil, nil, fmt.Errorf("sched: lane count must be >= 1, got %d", k)
	}
	order, err := g.TopoSort()
	if err != nil {
		return nil, nil, err
	}
	// Processing in topological order keeps placement greedy, single-pass
	// and dependency-respecting.
	prio := order

	lanes := make([][]*graph.Node, k)
	laneFree := make([]float64, k)
	finish := make(map[*graph.Node]float64, len(prio))
	laneOf := make(map[*graph.Node]int, len(prio))

	for _, n := range prio {
		bestLane, bestFinish := -1, 0.0
		for li := 0; li < k; li++ {
			s := laneFree[li]
			for _, p := range g.Predecessors(n) {
				arr := finish[p]
				if laneOf[p] != li {
					arr += m.EdgeCost()
				}
				if arr > s {
					s = arr
				}
			}
			f := s + m.NodeCost(n)
			if bestLane < 0 || f < bestFinish {
				bestLane, bestFinish = li, f
			}
		}
		lanes[bestLane] = append(lanes[bestLane], n)
		laneFree[bestLane] = bestFinish
		finish[n] = bestFinish
		laneOf[n] = bestLane
	}
	makespan := 0.0
	for _, f := range laneFree {
		if f > makespan {
			makespan = f
		}
	}
	sched := &Schedule{
		Makespan:    makespan,
		CompileTime: time.Since(start),
	}
	// Represent as one stage per lane set for reporting symmetry.
	st := Stage{Cost: makespan}
	for _, lane := range lanes {
		if len(lane) > 0 {
			st.Groups = append(st.Groups, lane)
		}
	}
	sched.Stages = []Stage{st}
	var kept [][]*graph.Node
	for _, lane := range lanes {
		if len(lane) > 0 {
			kept = append(kept, lane)
		}
	}
	return sched, kept, nil
}
