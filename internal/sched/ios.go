package sched

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cost"
	"repro/internal/graph"
)

// IOSOptions bounds the dynamic program.
type IOSOptions struct {
	// MaxStageWidth caps how many groups one stage may run in parallel
	// (the device's core budget in IOS).
	MaxStageWidth int
	// MaxBlockChains caps exact-DP block size; larger blocks fall back to
	// chain contraction and finally width-limited beam expansion, keeping
	// worst-case compile time bounded.
	MaxBlockChains int
	// OperatorGranularity, when true (the default via DefaultIOSOptions),
	// runs the DP over individual operators like the published IOS rather
	// than over contracted chains — the source of its compile cost.
	OperatorGranularity bool
	// MaxStatesPerBlock caps DP state visits per block before falling back
	// to the greedy beam (0 = unlimited).
	MaxStatesPerBlock int
}

// DefaultIOSOptions mirrors a 12-core target like the paper's Xeon.
func DefaultIOSOptions() IOSOptions {
	return IOSOptions{
		MaxStageWidth:       12,
		MaxBlockChains:      18,
		OperatorGranularity: true,
		MaxStatesPerBlock:   200000,
	}
}

// Stage is one step of an IOS schedule: a set of chain groups executed in
// parallel; the stage ends when all groups finish.
type Stage struct {
	// Groups holds each parallel group's nodes in execution order.
	Groups [][]*graph.Node
	// Cost is the stage makespan under the cost model: the heaviest group.
	Cost float64
}

// Schedule is the scheduler's output: consecutive stages plus bookkeeping
// for Table VIII.
type Schedule struct {
	Stages []Stage
	// Makespan is the modelled runtime: sum of stage costs.
	Makespan float64
	// CompileTime is how long the scheduler itself ran.
	CompileTime time.Duration
	// StatesExplored counts DP states, the work metric that explains why
	// IOS compiles orders of magnitude slower than linear clustering.
	StatesExplored int
}

// Lanes converts the staged schedule into executor lanes: group i of every
// stage maps to lane i, preserving stage order within each lane. Lane
// count is the widest stage.
func (s *Schedule) Lanes() [][]*graph.Node {
	width := 0
	for _, st := range s.Stages {
		if len(st.Groups) > width {
			width = len(st.Groups)
		}
	}
	lanes := make([][]*graph.Node, width)
	for _, st := range s.Stages {
		for gi, grp := range st.Groups {
			lanes[gi] = append(lanes[gi], grp...)
		}
	}
	return lanes
}

// IOS runs the inter-operator-scheduler dynamic program: contract chains,
// split into blocks, and within each block explore stage decompositions of
// the ready frontier with memoization, choosing the stage split minimizing
// total makespan. It reproduces the published algorithm's structure —
// optimal within its search space, at a compile cost that grows steeply
// with block width — which is precisely the trade-off Table VIII measures
// against linear clustering.
func IOS(g *graph.Graph, m cost.Model, opts IOSOptions) (*Schedule, error) {
	start := time.Now()
	if opts.MaxStageWidth < 1 {
		opts.MaxStageWidth = 1
	}
	if opts.MaxBlockChains < 2 {
		opts.MaxBlockChains = 2
	}
	var chains []*chainNode
	var err2 error
	if opts.OperatorGranularity {
		chains, err2 = operatorChains(g, m)
	} else {
		chains, err2 = contractChains(g, m)
	}
	if err2 != nil {
		return nil, err2
	}
	sched := &Schedule{}
	for _, block := range blocks(chains) {
		stages, states, err := scheduleBlock(block, m, opts)
		if err != nil {
			return nil, err
		}
		sched.Stages = append(sched.Stages, stages...)
		sched.StatesExplored += states
	}
	for _, st := range sched.Stages {
		sched.Makespan += st.Cost
	}
	sched.CompileTime = time.Since(start)
	return sched, nil
}

// scheduleBlock runs the exact subset DP when the block is small enough,
// otherwise a greedy-beam variant over the same transition structure. At
// operator granularity blocks are counted in operators, so the DP cap
// admits realistic CNN modules (tens of operators) whose downward-closed
// state space is what makes IOS expensive.
func scheduleBlock(block []*chainNode, m cost.Model, opts IOSOptions) ([]Stage, int, error) {
	limit := opts.MaxBlockChains
	if opts.OperatorGranularity {
		limit = 62 // bitmask DP bound
	}
	if len(block) <= limit {
		return dpBlock(block, m, opts)
	}
	// Too wide for the exact operator-level DP: contract linear runs
	// inside the block (IOS's operator grouping) and retry; only when even
	// the contracted block is too wide does the greedy beam take over.
	contracted := contractBlock(block)
	if len(contracted) < len(block) && len(contracted) <= 62 {
		return dpBlock(contracted, m, opts)
	}
	return beamBlock(block, m, opts)
}

// contractBlock merges maximal single-successor/single-predecessor runs of
// block-local chains into larger chainNodes (adjacency restricted to the
// block; cross-block edges are already satisfied when the block runs).
func contractBlock(block []*chainNode) []*chainNode {
	in := map[*chainNode]bool{}
	for _, c := range block {
		in[c] = true
	}
	localSuccs := func(c *chainNode) []*chainNode {
		var out []*chainNode
		for _, s := range c.succs {
			if in[s] {
				out = append(out, s)
			}
		}
		return out
	}
	localPreds := func(c *chainNode) []*chainNode {
		var out []*chainNode
		for _, p := range c.preds {
			if in[p] {
				out = append(out, p)
			}
		}
		return out
	}
	owner := map[*chainNode]*chainNode{}
	var merged []*chainNode
	for _, c := range block { // topological within block
		ps := localPreds(c)
		if len(ps) == 1 && len(localSuccs(ps[0])) == 1 {
			host := owner[ps[0]]
			host.nodes = append(host.nodes, c.nodes...)
			host.cost += c.cost
			owner[c] = host
			continue
		}
		nc := &chainNode{id: len(merged), nodes: append([]*graph.Node(nil), c.nodes...), cost: c.cost}
		merged = append(merged, nc)
		owner[c] = nc
	}
	// Rebuild merged adjacency.
	seen := map[[2]*chainNode]bool{}
	for _, c := range block {
		for _, s := range localSuccs(c) {
			a, b := owner[c], owner[s]
			if a != b && !seen[[2]*chainNode{a, b}] {
				seen[[2]*chainNode{a, b}] = true
				a.succs = append(a.succs, b)
				b.preds = append(b.preds, a)
			}
		}
	}
	for _, c := range merged {
		sort.Slice(c.succs, func(i, j int) bool { return c.succs[i].id < c.succs[j].id })
		sort.Slice(c.preds, func(i, j int) bool { return c.preds[i].id < c.preds[j].id })
	}
	return merged
}

// dpBlock: state = bitmask of executed chains (downward closed); value =
// minimal remaining makespan; transition = execute one "stage": any
// antichain subset of currently ready chains, up to MaxStageWidth groups.
func dpBlock(block []*chainNode, m cost.Model, opts IOSOptions) ([]Stage, int, error) {
	n := len(block)
	if n > 62 {
		return beamBlock(block, m, opts)
	}
	idx := make(map[*chainNode]int, n)
	for i, c := range block {
		idx[c] = i
	}
	// Precompute per-chain predecessor masks (within-block only).
	predMask := make([]uint64, n)
	for i, c := range block {
		for _, p := range c.preds {
			if j, ok := idx[p]; ok {
				predMask[i] |= 1 << uint(j)
			}
		}
	}
	full := uint64(1)<<uint(n) - 1
	memo := map[uint64]float64{full: 0}
	choice := map[uint64]uint64{}
	states := 0
	budget := opts.MaxStatesPerBlock
	aborted := false

	var solve func(done uint64) float64
	solve = func(done uint64) float64 {
		if v, ok := memo[done]; ok {
			return v
		}
		states++
		if budget > 0 && states > budget {
			aborted = true
			memo[done] = 0
			return 0
		}
		// Ready chains: unexecuted with all preds done.
		var ready []int
		for i := 0; i < n; i++ {
			bit := uint64(1) << uint(i)
			if done&bit == 0 && predMask[i]&^done == 0 {
				ready = append(ready, i)
			}
		}
		if len(ready) == 0 {
			// Unreachable for a DAG unless done == full.
			memo[done] = 0
			return 0
		}
		best := -1.0
		var bestSet uint64
		// Enumerate non-empty subsets of ready chains, width-capped.
		// IOS enumerates stage splits; subsets of the ready antichain are
		// exactly the realizable stages here because ready chains are
		// mutually independent.
		limit := 1 << uint(len(ready))
		for sub := 1; sub < limit; sub++ {
			if popcount(uint(sub)) > opts.MaxStageWidth {
				continue
			}
			var mask uint64
			stageCost := 0.0
			for bi, ci := range ready {
				if sub&(1<<uint(bi)) != 0 {
					mask |= 1 << uint(ci)
					if c := block[ci].cost; c > stageCost {
						stageCost = c
					}
				}
			}
			rest := solve(done | mask)
			if total := stageCost + rest; best < 0 || total < best {
				best = total
				bestSet = mask
			}
		}
		memo[done] = best
		choice[done] = bestSet
		return best
	}
	solve(0)
	if aborted {
		// State budget exhausted: the exact DP is intractable for this
		// block (exactly the regime where the published IOS burns its 90
		// minutes); fall back to the greedy beam, keeping the states
		// counter as the work record.
		stages, extra, err := beamBlock(block, m, opts)
		return stages, states + extra, err
	}

	// Reconstruct stages.
	var stages []Stage
	done := uint64(0)
	for done != full {
		set, ok := choice[done]
		if !ok || set == 0 {
			return nil, states, fmt.Errorf("sched: DP reconstruction stuck at %b", done)
		}
		st := Stage{}
		for i := 0; i < n; i++ {
			if set&(1<<uint(i)) != 0 {
				st.Groups = append(st.Groups, block[i].nodes)
				if block[i].cost > st.Cost {
					st.Cost = block[i].cost
				}
			}
		}
		stages = append(stages, st)
		done |= set
	}
	return stages, states, nil
}

// beamBlock handles blocks too wide for exact DP: at each step it takes
// all ready chains (up to MaxStageWidth, heaviest first) as one stage —
// the greedy corner of the same search space.
func beamBlock(block []*chainNode, m cost.Model, opts IOSOptions) ([]Stage, int, error) {
	done := map[*chainNode]bool{}
	remaining := len(block)
	inBlock := map[*chainNode]bool{}
	for _, c := range block {
		inBlock[c] = true
	}
	var stages []Stage
	states := 0
	for remaining > 0 {
		var ready []*chainNode
		for _, c := range block {
			if done[c] {
				continue
			}
			ok := true
			for _, p := range c.preds {
				if inBlock[p] && !done[p] {
					ok = false
					break
				}
			}
			if ok {
				ready = append(ready, c)
			}
		}
		if len(ready) == 0 {
			return nil, states, fmt.Errorf("sched: beam stuck with %d chains left", remaining)
		}
		sort.Slice(ready, func(i, j int) bool {
			if ready[i].cost != ready[j].cost {
				return ready[i].cost > ready[j].cost
			}
			return ready[i].id < ready[j].id
		})
		if len(ready) > opts.MaxStageWidth {
			ready = ready[:opts.MaxStageWidth]
		}
		st := Stage{}
		for _, c := range ready {
			st.Groups = append(st.Groups, c.nodes)
			if c.cost > st.Cost {
				st.Cost = c.cost
			}
			done[c] = true
			remaining--
		}
		states++
		stages = append(stages, st)
	}
	return stages, states, nil
}

func popcount(x uint) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}
