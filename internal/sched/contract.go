// Package sched implements the comparison schedulers of the evaluation:
// an IOS-style dynamic-programming inter-operator scheduler (Ding et al.,
// MLSys 2021), reproduced in-repo so Table VIII's compile-time-versus-
// runtime trade-off can be measured, and a classic earliest-finish-time
// list scheduler. Both consume the same graphs and cost model as the
// paper's Linear Clustering, and both emit exec-compatible lane plans.
package sched

import (
	"sort"

	"repro/internal/cost"
	"repro/internal/graph"
)

// chainNode is a contracted linear chain of operator nodes: IOS groups
// operator sequences, so DP states range over chains instead of single
// operators, exactly like the original's "operator group" notion.
type chainNode struct {
	id    int
	nodes []*graph.Node
	cost  float64
	succs []*chainNode
	preds []*chainNode
}

// contractChains merges maximal single-in/single-out chains of the graph
// into chainNodes, returning them in topological order.
func contractChains(g *graph.Graph, m cost.Model) ([]*chainNode, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	owner := make(map[*graph.Node]*chainNode, len(order))
	var chains []*chainNode
	for _, n := range order {
		// Extend the predecessor's chain when n has exactly one
		// predecessor which has exactly one successor.
		preds := g.Predecessors(n)
		if len(preds) == 1 && len(g.Successors(preds[0])) == 1 {
			c := owner[preds[0]]
			c.nodes = append(c.nodes, n)
			c.cost += m.NodeCost(n)
			owner[n] = c
			continue
		}
		c := &chainNode{id: len(chains), nodes: []*graph.Node{n}, cost: m.NodeCost(n)}
		chains = append(chains, c)
		owner[n] = c
	}
	// Wire chain-level adjacency (dedup).
	for _, c := range chains {
		seen := map[*chainNode]bool{c: true}
		last := c.nodes[len(c.nodes)-1]
		for _, s := range g.Successors(last) {
			sc := owner[s]
			if !seen[sc] {
				seen[sc] = true
				c.succs = append(c.succs, sc)
				sc.preds = append(sc.preds, c)
			}
		}
		// Mid-chain nodes can also have extra successors when contraction
		// grouped through a node with multiple consumers; by construction
		// they cannot (only single-successor preds were absorbed), except
		// the last node handled above — but a mid node may feed a node in
		// another chain if that consumer had multiple preds. Cover it:
		for _, n := range c.nodes[:len(c.nodes)-1] {
			for _, s := range g.Successors(n) {
				sc := owner[s]
				if sc != c && !seen[sc] {
					seen[sc] = true
					c.succs = append(c.succs, sc)
					sc.preds = append(sc.preds, c)
				}
			}
		}
	}
	for _, c := range chains {
		sort.Slice(c.succs, func(i, j int) bool { return c.succs[i].id < c.succs[j].id })
		sort.Slice(c.preds, func(i, j int) bool { return c.preds[i].id < c.preds[j].id })
	}
	return chains, nil
}

// blocks splits the chain DAG at synchronization points — chains that every
// other concurrent path passes through — mirroring IOS's decomposition of
// networks into sequential blocks that are scheduled independently. The
// result is a partition of chains into consecutive blocks.
func blocks(chains []*chainNode) [][]*chainNode {
	if len(chains) == 0 {
		return nil
	}
	// A chain c is a synchronization point when, processing in topological
	// order, the number of "open" paths drops to zero after c: we track
	// active = chains whose successors are not fully emitted yet.
	indeg := make(map[*chainNode]int, len(chains))
	for _, c := range chains {
		indeg[c] = len(c.preds)
	}
	var out [][]*chainNode
	var cur []*chainNode
	pendingEdges := 0
	for _, c := range chains { // chains are in topo order by construction
		cur = append(cur, c)
		pendingEdges -= indeg[c]
		pendingEdges += len(c.succs)
		// c is a synchronization point when every outstanding edge
		// originates at c itself: everything before c has fully drained,
		// so the block may close here (c's successors start the next
		// block, with c treated as already executed).
		if pendingEdges == len(c.succs) {
			out = append(out, cur)
			cur = nil
		}
	}
	if len(cur) > 0 {
		out = append(out, cur)
	}
	return out
}

// operatorChains wraps every operator in its own chainNode: the
// operator-granularity mode in which the published IOS dynamic program
// runs, and the reason its search space (downward-closed subsets of a
// module's operators) dwarfs linear clustering's linear-time sweep.
func operatorChains(g *graph.Graph, m cost.Model) ([]*chainNode, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	owner := make(map[*graph.Node]*chainNode, len(order))
	chains := make([]*chainNode, 0, len(order))
	for _, n := range order {
		c := &chainNode{id: len(chains), nodes: []*graph.Node{n}, cost: m.NodeCost(n)}
		chains = append(chains, c)
		owner[n] = c
	}
	for _, c := range chains {
		for _, s := range g.Successors(c.nodes[0]) {
			sc := owner[s]
			c.succs = append(c.succs, sc)
			sc.preds = append(sc.preds, c)
		}
	}
	for _, c := range chains {
		sort.Slice(c.succs, func(i, j int) bool { return c.succs[i].id < c.succs[j].id })
		sort.Slice(c.preds, func(i, j int) bool { return c.preds[i].id < c.preds[j].id })
	}
	return chains, nil
}
