package sched

import (
	"testing"
	"testing/quick"

	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/ops"
	"repro/internal/tensor"
)

// widePara: src feeding k independent conv chains joined at a concat.
func widePara(k, depth int) *graph.Graph {
	g := graph.New("wide")
	g.Inputs = []graph.ValueInfo{{Name: "x"}}
	g.AddNode("src", "Relu", []string{"x"}, []string{"vs"}, nil)
	var joins []string
	for b := 0; b < k; b++ {
		cur := "vs"
		for d := 0; d < depth; d++ {
			out := "b" + itoa(b) + "_" + itoa(d)
			g.AddNode("conv"+itoa(b)+"_"+itoa(d), "Conv", []string{cur}, []string{out},
				ops.Attrs{"kernel_shape": []int{3, 3}})
			cur = out
		}
		joins = append(joins, cur)
	}
	g.AddNode("join", "Concat", joins, []string{"out"}, nil)
	g.Outputs = []graph.ValueInfo{{Name: "out"}}
	return g
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestContractChainsMergesLinearRuns(t *testing.T) {
	g := widePara(3, 4)
	chains, err := contractChains(g, cost.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	// src, 3 branch chains, join = 5 chains.
	if len(chains) != 5 {
		t.Fatalf("got %d chains, want 5", len(chains))
	}
	total := 0
	for _, c := range chains {
		total += len(c.nodes)
	}
	if total != len(g.Nodes) {
		t.Errorf("chains cover %d of %d nodes", total, len(g.Nodes))
	}
	// The three branch chains must each hold `depth` nodes.
	branchChains := 0
	for _, c := range chains {
		if len(c.nodes) == 4 {
			branchChains++
		}
	}
	if branchChains != 3 {
		t.Errorf("branch chains = %d", branchChains)
	}
}

func TestBlocksSplitAtSyncPoints(t *testing.T) {
	// Two wide sections separated by a synchronization node.
	g := graph.New("twoblocks")
	g.Inputs = []graph.ValueInfo{{Name: "x"}}
	g.AddNode("s1", "Relu", []string{"x"}, []string{"v1"}, nil)
	g.AddNode("a", "Conv", []string{"v1"}, []string{"va"}, nil)
	g.AddNode("b", "Conv", []string{"v1"}, []string{"vb"}, nil)
	g.AddNode("sync", "Add", []string{"va", "vb"}, []string{"v2"}, nil)
	g.AddNode("c", "Conv", []string{"v2"}, []string{"vc"}, nil)
	g.AddNode("d", "Conv", []string{"v2"}, []string{"vd"}, nil)
	g.AddNode("end", "Add", []string{"vc", "vd"}, []string{"out"}, nil)
	g.Outputs = []graph.ValueInfo{{Name: "out"}}
	chains, err := contractChains(g, cost.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	bs := blocks(chains)
	if len(bs) < 2 {
		t.Errorf("expected >= 2 blocks around the sync node, got %d", len(bs))
	}
	total := 0
	for _, blk := range bs {
		total += len(blk)
	}
	if total != len(chains) {
		t.Errorf("blocks cover %d of %d chains", total, len(chains))
	}
}

func TestIOSFindsParallelStages(t *testing.T) {
	g := widePara(4, 3)
	m := cost.DefaultModel()
	sched, err := IOS(g, m, DefaultIOSOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: src stage + one stage with all 4 branches parallel + join.
	seq := cost.GraphCost(g, m)
	if sched.Makespan >= seq {
		t.Errorf("IOS makespan %v not below sequential %v", sched.Makespan, seq)
	}
	if sched.StatesExplored <= 0 {
		t.Error("no DP states explored")
	}
	// All nodes present exactly once across stages.
	seen := map[string]bool{}
	for _, st := range sched.Stages {
		for _, grp := range st.Groups {
			for _, n := range grp {
				if seen[n.Name] {
					t.Fatalf("node %s scheduled twice", n.Name)
				}
				seen[n.Name] = true
			}
		}
	}
	if len(seen) != len(g.Nodes) {
		t.Errorf("schedule covers %d of %d nodes", len(seen), len(g.Nodes))
	}
}

func TestIOSWidthCap(t *testing.T) {
	g := widePara(6, 2)
	m := cost.DefaultModel()
	opts := DefaultIOSOptions()
	opts.MaxStageWidth = 2
	sched, err := IOS(g, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range sched.Stages {
		if len(st.Groups) > 2 {
			t.Fatalf("stage width %d exceeds cap 2", len(st.Groups))
		}
	}
}

func TestIOSLanesExecutable(t *testing.T) {
	// The staged schedule's lanes must form a runnable plan that matches
	// the sequential result.
	g := models.MustBuild("squeezenet", models.Config{ImageSize: 16})
	m := cost.DefaultModel()
	sched, err := IOS(g, m, DefaultIOSOptions())
	if err != nil {
		t.Fatal(err)
	}
	lanes := sched.Lanes()
	plan, err := exec.NewPlan(g, lanes)
	if err != nil {
		t.Fatal(err)
	}
	feeds := models.RandomInputs(g, 3)
	want, err := exec.RunSequential(g, feeds)
	if err != nil {
		t.Fatal(err)
	}
	got, err := plan.Run(feeds)
	if err != nil {
		t.Fatal(err)
	}
	for k, w := range want {
		if !got[k].Equal(w) {
			t.Errorf("IOS plan output %s differs", k)
		}
	}
}

func TestIOSBeamFallbackOnWideBlocks(t *testing.T) {
	g := widePara(25, 1) // one block with 27 chains > MaxBlockChains
	m := cost.DefaultModel()
	opts := DefaultIOSOptions()
	opts.MaxBlockChains = 10
	sched, err := IOS(g, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for _, st := range sched.Stages {
		for _, grp := range st.Groups {
			seen += len(grp)
		}
	}
	if seen != len(g.Nodes) {
		t.Errorf("beam schedule covers %d of %d", seen, len(g.Nodes))
	}
}

func TestIOSCompileCostGrowsWithWidth(t *testing.T) {
	// The Table VIII story: DP work explodes with graph width while LC
	// stays linear. Check states explored grows superlinearly in width.
	m := cost.DefaultModel()
	s4, err := IOS(widePara(4, 2), m, DefaultIOSOptions())
	if err != nil {
		t.Fatal(err)
	}
	s8, err := IOS(widePara(8, 2), m, DefaultIOSOptions())
	if err != nil {
		t.Fatal(err)
	}
	if s8.StatesExplored <= s4.StatesExplored*2 {
		t.Errorf("DP states: width4=%d width8=%d — not superlinear",
			s4.StatesExplored, s8.StatesExplored)
	}
}

func TestListScheduleBasics(t *testing.T) {
	g := widePara(4, 3)
	m := cost.DefaultModel()
	sched, lanes, err := ListSchedule(g, m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Makespan >= cost.GraphCost(g, m) {
		t.Errorf("list makespan %v not below sequential", sched.Makespan)
	}
	total := 0
	for _, lane := range lanes {
		total += len(lane)
	}
	if total != len(g.Nodes) {
		t.Errorf("lanes cover %d of %d", total, len(g.Nodes))
	}
	plan, err := exec.NewPlan(g, lanes)
	if err != nil {
		t.Fatal(err)
	}
	_ = plan
	if _, _, err := ListSchedule(g, m, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestListScheduleSingleLaneIsSequential(t *testing.T) {
	g := widePara(3, 2)
	m := cost.DefaultModel()
	sched, _, err := ListSchedule(g, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Makespan != cost.GraphCost(g, m) {
		t.Errorf("1-lane makespan %v != total %v", sched.Makespan, cost.GraphCost(g, m))
	}
}

// Property: IOS schedules of random DAGs always cover all nodes exactly
// once and have makespan between CP lower bound intuition and sequential.
func TestIOSCoversRandomDAGs(t *testing.T) {
	m := cost.DefaultModel()
	f := func(seed uint32) bool {
		g := graph.RandomDAG(tensor.NewRNG(uint64(seed)+41), 25)
		sched, err := IOS(g, m, DefaultIOSOptions())
		if err != nil {
			return false
		}
		seen := map[string]bool{}
		for _, st := range sched.Stages {
			for _, grp := range st.Groups {
				for _, n := range grp {
					if seen[n.Name] {
						return false
					}
					seen[n.Name] = true
				}
			}
		}
		return len(seen) == len(g.Nodes) && sched.Makespan <= cost.GraphCost(g, m)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
