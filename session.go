package ramiel

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"sync/atomic"
)

// ErrSessionBusy is returned by Session.Run when a second Run overlaps a
// running one on the same Session. A Session is a single-goroutine handle;
// create one Session per goroutine (they may all share one Program).
var ErrSessionBusy = errors.New("ramiel: session is running; a Session serves one goroutine — create one per goroutine")

// ErrInvalidFeeds marks feed-validation failures (missing, unknown or
// mis-shaped inputs) from ValidateFeeds/Session.Run, so callers — the
// serving layer's cause-labeled error counters in particular — can classify
// bad requests without string matching.
var ErrInvalidFeeds = errors.New("invalid feeds")

// sessionConfig is the resolved NewSession configuration.
type sessionConfig struct {
	arena     *Arena
	noArena   bool
	profiling bool
}

// SessionOption configures NewSession.
type SessionOption func(*sessionConfig)

// WithArena makes the session execute with the given caller-owned arena
// instead of creating its own. The session takes exclusive use of it while
// running; sharing one arena between concurrently-running sessions is a
// contract violation (see the Arena docs). WithArena(nil) is equivalent to
// WithoutArena — matching the old RunArena(feeds, nil) heap-path contract.
func WithArena(a *Arena) SessionOption {
	return func(c *sessionConfig) {
		if a == nil {
			c.noArena = true
			c.arena = nil
			return
		}
		c.arena = a
		c.noArena = false
	}
}

// WithoutArena disables arena-backed execution: every kernel output is an
// ordinary heap allocation and nothing is recycled between runs. Useful for
// one-shot runs and allocation-behavior comparisons.
func WithoutArena() SessionOption {
	return func(c *sessionConfig) { c.noArena = true; c.arena = nil }
}

// WithProfiling records each run's per-lane busy/slack profile, retrievable
// via Session.Profile after the run.
func WithProfiling() SessionOption {
	return func(c *sessionConfig) { c.profiling = true }
}

// Session is a reusable execution handle over a compiled Program: it
// bundles the run configuration — an arena for tensor recycling (on by
// default) and the profiling toggle — so the execution API is one method,
// Session.Run, instead of a matrix of Run variants.
//
// A Session is a single-goroutine handle: its state (arena free lists, last
// profile) carries across sequential runs, which is exactly what makes
// steady-state inference allocation-free, so two goroutines must not share
// one. Overlapping Run calls are detected and fail with ErrSessionBusy.
// The Program underneath stays shareable: any number of Sessions may run
// the same Program concurrently (the serving invariant).
type Session struct {
	prog      *Program
	arena     *Arena
	profiling bool
	// running detects concurrent misuse of the single-goroutine handle.
	running atomic.Bool
	// lastProfile is only written between running transitions, so plain
	// access is safe under the single-goroutine contract.
	lastProfile *Profile
}

// NewSession creates an execution handle for the program. By default the
// session owns a fresh arena, so intermediate tensors are recycled across
// its runs; see WithArena, WithoutArena and WithProfiling.
func (p *Program) NewSession(opts ...SessionOption) *Session {
	var cfg sessionConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	s := &Session{prog: p, profiling: cfg.profiling}
	switch {
	case cfg.noArena:
	case cfg.arena != nil:
		s.arena = cfg.arena
	default:
		s.arena = NewArena()
	}
	return s
}

// Run executes the program with the session's configuration and returns the
// graph outputs. Feeds are validated up front (see Program.ValidateFeeds),
// so a bad request fails with a clear error instead of a kernel failure
// deep inside a lane.
//
// ctx cancellation and deadlines are observed cooperatively between
// operator kernels and while lanes are blocked on cross-lane receives: a
// cancelled run unwinds within one kernel's duration, leaks no goroutines,
// leaves the session's arena consistent and immediately reusable, and
// returns ctx.Err().
func (s *Session) Run(ctx context.Context, feeds Env) (Env, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if !s.running.CompareAndSwap(false, true) {
		return nil, ErrSessionBusy
	}
	defer s.running.Store(false)
	if err := s.prog.ValidateFeeds(feeds); err != nil {
		return nil, err
	}
	out, prof, err := s.prog.Plan.Execute(ctx, feeds, s.arena)
	if err != nil {
		return nil, err
	}
	if s.profiling {
		s.lastProfile = prof
	}
	return out, nil
}

// Profile returns the most recent run's per-lane busy/slack profile, or nil
// when the session was created without WithProfiling or has not run yet.
func (s *Session) Profile() *Profile { return s.lastProfile }

// Arena returns the session's arena, or nil when created WithoutArena.
// Useful for reading its stats; do not pass it to another running session.
func (s *Session) Arena() *Arena { return s.arena }

// Program returns the compiled program this session executes.
func (s *Session) Program() *Program { return s.prog }

// ValidateFeeds checks feeds against the program's declared inputs and
// returns a single error naming every missing input, every shape mismatch,
// and every unknown feed name — the same checks a run performs, surfaced
// before any lane starts so a bad request never becomes a cryptic kernel
// error. A nil return means a run of these feeds will find all its inputs.
// The happy path allocates nothing.
func (p *Program) ValidateFeeds(feeds Env) error {
	var missing, mismatched []string
	matched := 0
	for _, in := range p.Graph.Inputs {
		t, ok := feeds[in.Name]
		if !ok || t == nil {
			missing = append(missing, in.Name)
			continue
		}
		matched++
		if len(in.Shape) > 0 && !t.Shape().Equal(in.Shape) {
			mismatched = append(mismatched,
				fmt.Sprintf("%s: feed has shape %v, program declares %v", in.Name, t.Shape(), in.Shape))
		}
	}
	var unknown []string
	if len(feeds) > matched {
		declared := make(map[string]bool, len(p.Graph.Inputs))
		for _, in := range p.Graph.Inputs {
			declared[in.Name] = true
		}
		for name := range feeds {
			if !declared[name] {
				unknown = append(unknown, name)
			}
		}
		sort.Strings(unknown)
	}
	if missing == nil && mismatched == nil && unknown == nil {
		return nil
	}
	var parts []string
	if len(missing) > 0 {
		parts = append(parts, "missing inputs: "+strings.Join(missing, ", "))
	}
	if len(unknown) > 0 {
		parts = append(parts, "unknown inputs: "+strings.Join(unknown, ", "))
	}
	if len(mismatched) > 0 {
		parts = append(parts, "shape mismatches: "+strings.Join(mismatched, "; "))
	}
	return fmt.Errorf("ramiel: %w for %q: %s", ErrInvalidFeeds, p.Graph.Name, strings.Join(parts, "; "))
}

// CheckFiniteFeeds rejects feeds carrying NaN or ±Inf values. Non-finite
// inputs propagate silently through the fused kernels and poison every
// downstream activation, so serving layers scan feeds up front (opt-out via
// their config) and fail them as validation errors. The scan is branch-only
// over the feed data — no allocation on the accept path. The error wraps
// ErrInvalidFeeds for cause classification.
func CheckFiniteFeeds(feeds Env) error {
	for name, t := range feeds {
		if t == nil {
			continue
		}
		for i, v := range t.Data() {
			if v != v || v > math.MaxFloat32 || v < -math.MaxFloat32 {
				return fmt.Errorf("ramiel: %w: non-finite value in %q at index %d", ErrInvalidFeeds, name, i)
			}
		}
	}
	return nil
}
