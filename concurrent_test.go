package ramiel_test

import (
	"sync"
	"testing"

	ramiel "repro"
)

// TestProgramRunConcurrent proves the serving invariant on a real zoo
// model: one compiled Program handles many simultaneous Run calls (run
// with -race), each producing the sequential reference output.
func TestProgramRunConcurrent(t *testing.T) {
	g, err := ramiel.BuildModel("squeezenet", ramiel.ModelConfig{ImageSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ramiel.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	feeds := ramiel.RandomInputs(g, 7)
	ref, err := prog.RunSequential(feeds)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines, iters = 8, 3
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				out, err := prog.Run(feeds)
				if err != nil {
					t.Error(err)
					return
				}
				for name, want := range ref {
					if got := out[name]; got == nil || !got.AllClose(want, 1e-4, 1e-5) {
						t.Errorf("output %q diverged from sequential reference", name)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestHyperclusteredRunConcurrent does the same through a hyperclustered
// batch plan — the micro-batcher's execution path.
func TestHyperclusteredRunConcurrent(t *testing.T) {
	g, err := ramiel.BuildModel("squeezenet", ramiel.ModelConfig{ImageSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	base, err := ramiel.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	const batch = 2
	prog, err := base.Hypercluster(batch, false)
	if err != nil {
		t.Fatal(err)
	}

	// Batch feeds: the same sample replicated, so every sample must match
	// the batch-1 sequential reference.
	feeds := ramiel.RandomInputs(g, 11)
	ref, err := base.RunSequential(feeds)
	if err != nil {
		t.Fatal(err)
	}
	batched := ramiel.Env{}
	for name, tns := range feeds {
		for s := 0; s < batch; s++ {
			batched[ramiel.SampleValueName(name, s)] = tns
		}
	}

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := prog.Run(batched)
			if err != nil {
				t.Error(err)
				return
			}
			for name, got := range out {
				want := ref[ramiel.BaseValueName(name)]
				if want == nil || !got.AllClose(want, 1e-4, 1e-5) {
					t.Errorf("batched output %q diverged from reference", name)
					return
				}
			}
		}()
	}
	wg.Wait()
}
