package ramiel

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestCompileAndRunSqueezenet(t *testing.T) {
	g, err := BuildModel("squeezenet", ModelConfig{ImageSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	if prog.NumClusters() < 2 {
		t.Errorf("squeezenet should cluster into >= 2 lanes, got %d", prog.NumClusters())
	}
	if prog.CompileTime <= 0 {
		t.Error("no compile time recorded")
	}
	feeds := RandomInputs(g, 42)
	want, err := prog.RunSequential(feeds)
	if err != nil {
		t.Fatal(err)
	}
	got, err := prog.Run(feeds)
	if err != nil {
		t.Fatal(err)
	}
	for k, w := range want {
		if !got[k].Equal(w) {
			t.Errorf("output %s differs", k)
		}
	}
}

func TestCompilePipelineVariants(t *testing.T) {
	g, _ := BuildModel("yolo_v5", ModelConfig{})
	feeds := RandomInputs(g, 1)
	base, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	want, err := base.RunSequential(feeds)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{
		{Prune: true},
		{Clone: true},
		{Prune: true, Clone: true},
		{DisableMerge: true},
	} {
		prog, err := CompileWithOptions(g, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		got, err := prog.Run(feeds)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		for k, w := range want {
			if !got[k].AllClose(w, 1e-4, 1e-5) {
				t.Errorf("%+v: output %s differs", opts, k)
			}
		}
	}
}

func TestPruneReportOnConstantModels(t *testing.T) {
	g, _ := BuildModel("bert", ModelConfig{})
	prog, err := Compile(g, WithPrune())
	if err != nil {
		t.Fatal(err)
	}
	if prog.PruneReport.Fold.Folded == 0 {
		t.Error("BERT pruning folded nothing")
	}
	base, _ := Compile(g)
	if prog.NumClusters() >= base.NumClusters() {
		t.Errorf("pruning did not reduce clusters: %d vs %d (Table III shape)",
			prog.NumClusters(), base.NumClusters())
	}
}

func TestDisableMergeAblation(t *testing.T) {
	g, _ := BuildModel("googlenet", ModelConfig{ImageSize: 16})
	merged, _ := Compile(g)
	unmerged, _ := Compile(g, WithoutMerge())
	if unmerged.NumClusters() <= merged.NumClusters() {
		t.Errorf("merge ablation: unmerged %d <= merged %d",
			unmerged.NumClusters(), merged.NumClusters())
	}
}

func TestMetricsAndSimulate(t *testing.T) {
	g, _ := BuildModel("nasnet", ModelConfig{ImageSize: 16})
	prog, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	met, err := prog.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if met.Parallelism < 2 {
		t.Errorf("nasnet metrics %+v", met)
	}
	sim, err := prog.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if sim.Speedup() <= 1 {
		t.Errorf("nasnet simulated speedup %v", sim.Speedup())
	}
}

func TestHyperclusterEndToEnd(t *testing.T) {
	g, _ := BuildModel("squeezenet", ModelConfig{ImageSize: 16})
	prog, _ := Compile(g)
	for _, switched := range []bool{false, true} {
		hp, err := prog.Hypercluster(3, switched)
		if err != nil {
			t.Fatal(err)
		}
		feeds := RandomInputs(hp.Graph, 9)
		want, err := RunSequentialGraph(hp.Graph, feeds)
		if err != nil {
			t.Fatal(err)
		}
		got, err := hp.Run(feeds)
		if err != nil {
			t.Fatal(err)
		}
		for k, w := range want {
			if !got[k].Equal(w) {
				t.Errorf("switched=%v output %s differs", switched, k)
			}
		}
	}
}

func TestSaveLoadModelThroughFacade(t *testing.T) {
	g, _ := BuildModel("squeezenet", ModelConfig{ImageSize: 16})
	path := filepath.Join(t.TempDir(), "sq.json.gz")
	if err := SaveModel(g, path); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(g2.Nodes) != len(g.Nodes) {
		t.Error("node count changed through save/load")
	}
}

func TestQueuesRuntime(t *testing.T) {
	q := NewQueues(2)
	tns := Scalar(7)
	done := make(chan *Tensor)
	go func() { done <- q.Recv("v", 1) }()
	q.Send("v", 1, tns)
	if got := <-done; got != tns {
		t.Error("Recv returned wrong tensor")
	}
	q.Publish("out", tns)
	pub := q.Published()
	if pub["out"] != tns {
		t.Error("Publish/Published mismatch")
	}
	// Published returns a copy.
	delete(pub, "out")
	if q.Published()["out"] != tns {
		t.Error("Published exposed internal map")
	}
}

// Scalar helper for the runtime test (mirrors tensor.Scalar through the
// public alias).
func Scalar(v float32) *Tensor {
	t := ZerosTensor(1)
	t.Data()[0] = v
	return t
}

func TestCallDispatch(t *testing.T) {
	x := ZerosTensor(3)
	x.Data()[0], x.Data()[1], x.Data()[2] = -1, 0, 2
	out, err := Call("Relu", []*Tensor{x}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Data()[0] != 0 || out[0].Data()[2] != 2 {
		t.Errorf("Call(Relu) = %v", out[0].Data())
	}
	if _, err := Call("Bogus", []*Tensor{x}, nil); err == nil {
		t.Error("unknown op accepted")
	}
	ops := SupportedOps()
	if len(ops) < 30 {
		t.Errorf("only %d supported ops", len(ops))
	}
}

func TestSyntheticEnvRunsGeneratedStyle(t *testing.T) {
	env := SyntheticEnv("squeezenet")
	if len(env) == 0 {
		t.Fatal("empty synthetic env")
	}
	if env["input"] == nil {
		t.Error("no input feed in synthetic env")
	}
}

func TestGenerateGoFromFacade(t *testing.T) {
	g, _ := BuildModel("squeezenet", ModelConfig{ImageSize: 16})
	prog, _ := Compile(g)
	src, err := prog.GenerateGo(CodegenOptions{EmitMain: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"func cluster0(", "func runSequential(", "ramiel.Call("} {
		if !strings.Contains(src, frag) {
			t.Errorf("generated source missing %q", frag)
		}
	}
}

func TestModelNames(t *testing.T) {
	names := ModelNames()
	if len(names) != 8 {
		t.Errorf("ModelNames = %v", names)
	}
	if _, err := BuildModel("not_a_model", ModelConfig{}); err == nil {
		t.Error("unknown model accepted")
	}
}
