package ramiel

// CompileOption configures Compile. The zero configuration (no options)
// runs the plain pipeline: default cost model, no pruning or cloning,
// operator fusion on, cluster merging on, memory plan built lazily on the
// first arena run.
type CompileOption func(*Options)

// WithCostModel sets the static operator cost model driving clustering
// (default DefaultCostModel()).
func WithCostModel(m CostModel) CompileOption {
	return func(o *Options) { o.CostModel = m }
}

// WithPrune enables constant propagation + dead-code elimination before
// clustering (Section III-C).
func WithPrune() CompileOption {
	return func(o *Options) { o.Prune = true }
}

// WithClone enables limited task cloning before clustering (Section III-D).
// Passing bounds overrides the default cloning limits; the last value wins.
func WithClone(bounds ...CloneOptions) CompileOption {
	return func(o *Options) {
		o.Clone = true
		if len(bounds) > 0 {
			co := bounds[len(bounds)-1]
			o.CloneOptions = &co
		}
	}
}

// WithoutMerge skips the cluster-merging pass (Algorithms 2-3); used by the
// merge ablation only.
func WithoutMerge() CompileOption {
	return func(o *Options) { o.DisableMerge = true }
}

// WithoutFusion skips the operator-fusion pass (BatchNorm folding into
// Conv/Gemm weights, activation epilogues applied in the GEMM writeback,
// and fused elementwise chains). Fusion is on by default; this is the
// escape hatch for debugging, ablations, and exact-unfused-rounding runs.
func WithoutFusion() CompileOption {
	return func(o *Options) { o.DisableFusion = true }
}

// WithEagerMemPlan builds the static memory plan (internal/memplan) during
// Compile instead of lazily on the first arena-backed run, so serving pays
// it at warm time. CompileTime then includes it.
func WithEagerMemPlan() CompileOption {
	return func(o *Options) { o.EagerMemPlan = true }
}

// Compile runs the Ramiel pipeline on a copy of g: optional pruning and
// cloning, the distance pass, recursive critical-path linear clustering and
// iterative cluster merging, finishing with an executable plan.
//
//	prog, err := ramiel.Compile(g, ramiel.WithPrune(), ramiel.WithClone())
//
// Execute the result through a Session (Program.NewSession + Session.Run).
func Compile(g *Graph, opts ...CompileOption) (*Program, error) {
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	return compile(g, o)
}

// CompileWithOptions is the struct-form compatibility wrapper around
// Compile, for callers that carry the configuration as data (the serving
// registry fingerprints it into cache keys). New code building options
// in place should prefer Compile's functional options.
func CompileWithOptions(g *Graph, o Options) (*Program, error) {
	return compile(g, o)
}
