package ramiel

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/hyper"
	"repro/internal/memplan"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/onnx"
	"repro/internal/ops"
	"repro/internal/passes"
	"repro/internal/tensor"
)

// Re-exported core types so downstream code (including the generated
// parallel programs) never imports internal packages directly.
type (
	// Tensor is a dense float32 tensor.
	Tensor = tensor.Tensor
	// Shape is a tensor shape.
	Shape = tensor.Shape
	// Attrs holds operator attributes.
	Attrs = ops.Attrs
	// Env binds value names to tensors.
	Env = exec.Env
	// Graph is the dataflow-graph IR.
	Graph = graph.Graph
	// Node is one operator in a Graph.
	Node = graph.Node
	// ValueInfo names a graph-level input or output and its shape.
	ValueInfo = graph.ValueInfo
	// ModelConfig controls zoo-model construction.
	ModelConfig = models.Config
	// CostModel assigns static weights to operators.
	CostModel = cost.Model
	// Metrics is the potential-parallelism report of Table I.
	Metrics = cost.Metrics
	// Profile is a parallel execution trace with per-lane slack.
	Profile = exec.Profile
	// SimResult is a simulated-makespan report.
	SimResult = exec.SimResult
	// CloneOptions bounds the task-cloning pass.
	CloneOptions = passes.CloneOptions
	// Arena recycles tensor storage across runs (see Program.RunArena).
	Arena = tensor.Arena
	// ArenaStats aggregates arena counters, shareable between arenas.
	ArenaStats = tensor.ArenaStats
	// OpTotal is one operator type's measured execution totals
	// (invocations + cumulative ns) from a program's live counters.
	OpTotal = obs.OpTotal
	// Timeline is a program's execution flight recorder: 1-in-N sampled
	// per-op/per-wait span timelines (see Program.EnableTimeline).
	Timeline = obs.Timeline
	// RunTimeline is one sampled run's complete span timeline, exportable
	// as Chrome trace-event JSON (RunTimeline.ChromeTrace).
	RunTimeline = obs.RunTimeline
	// Calibration compares the static cost model against live measured
	// per-op durations (see Program.Calibrate).
	Calibration = exec.Calibration
	// CriticalPathReport is a sampled run's measured critical path next to
	// the static model's prediction (see Program.CriticalPathFromTimeline).
	CriticalPathReport = exec.CriticalPathReport
)

// NewArena creates an empty tensor arena for Program.RunArena. Keep it
// alive across runs (it is what makes steady-state inference allocation-
// free); do not share it between concurrent runs.
func NewArena() *Arena { return tensor.NewArena() }

// NewTensor wraps data (not copied) with the given shape.
func NewTensor(shape Shape, data []float32) *Tensor { return tensor.New(shape, data) }

// ZerosTensor allocates a zero-filled tensor.
func ZerosTensor(dims ...int) *Tensor { return tensor.Zeros(dims...) }

// NewShape builds a Shape from extents.
func NewShape(dims ...int) Shape { return tensor.NewShape(dims...) }

// BuildModel constructs one of the paper's eight evaluation models
// ("squeezenet", "googlenet", "inception_v3", "inception_v4", "yolo_v5",
// "retinanet", "bert", "nasnet").
func BuildModel(name string, cfg ModelConfig) (*Graph, error) {
	return models.Build(name, cfg)
}

// ModelNames lists the available zoo models.
func ModelNames() []string { return models.Names() }

// LoadModel reads an ONNX-subset model file (JSON, optionally .gz).
func LoadModel(path string) (*Graph, error) { return onnx.LoadGraph(path) }

// SaveModel writes g as an ONNX-subset model file.
func SaveModel(g *Graph, path string) error { return onnx.SaveGraph(g, path) }

// RandomInputs builds a deterministic valid feed for every graph input.
func RandomInputs(g *Graph, seed uint64) Env { return models.RandomInputs(g, seed) }

// DefaultCostModel returns the paper's static operator-weight table.
func DefaultCostModel() CostModel { return cost.DefaultModel() }

// SetIntraOpThreads sets the kernels' intra-operator parallelism degree,
// the analogue of OMP_NUM_THREADS for the paper's downstream intra-op
// experiments (Table V).
func SetIntraOpThreads(n int) { tensor.SetIntraOpThreads(n) }

// Options is the struct form of the compile configuration, consumed by
// CompileWithOptions. It exists for callers that carry the configuration as
// data (the serving registry fingerprints it into program-cache keys); code
// configuring a compile in place should use Compile with functional options
// (WithPrune, WithClone, WithCostModel, WithEagerMemPlan, WithoutMerge).
type Options struct {
	// CostModel defaults to DefaultCostModel().
	CostModel CostModel
	// Prune runs constant propagation + dead-code elimination first
	// (Section III-C).
	Prune bool
	// Clone runs limited task cloning before clustering (Section III-D).
	Clone bool
	// CloneOptions overrides the default cloning bounds.
	CloneOptions *CloneOptions
	// DisableMerge skips the cluster-merging pass (Algorithms 2-3); used
	// by the merge ablation only.
	DisableMerge bool
	// DisableFusion skips the operator-fusion pass (BatchNorm folding,
	// kernel writeback epilogues, fused elementwise chains). Fusion is on
	// by default — it is semantics-preserving to float rounding — and this
	// is the escape hatch (WithoutFusion) for debugging and ablations.
	DisableFusion bool
	// EagerMemPlan builds the static memory plan (internal/memplan) during
	// Compile instead of lazily on the first arena run, so serving pays it
	// at warm time. CompileTime then includes it.
	EagerMemPlan bool
}

// Program is a compiled parallel program: the (possibly optimized) graph,
// its clustering and the executable plan.
type Program struct {
	Graph      *Graph
	Clustering *core.Clustering
	Plan       *exec.Plan
	// CompileTime is the full pipeline latency (the paper's CT column in
	// Table VIII).
	CompileTime time.Duration
	// PruneReport / CloneReport / FusionReport record what the optimization
	// passes did (zero values when the pass was disabled).
	PruneReport  passes.PruneReport
	CloneReport  passes.CloneReport
	FusionReport passes.FusionReport

	// opts remembers the compile configuration so GenerateGo can bake an
	// environment-reproduction expression into generated code (see
	// CompiledEnv).
	opts Options

	// memEst memoizes MemoryEstimate: the sizing run is a full sequential
	// execution, so it must happen at most once per program.
	memEstOnce sync.Once
	memEst     memplan.Estimate
	memEstErr  error
}

// compile is the pipeline shared by Compile (functional options) and
// CompileWithOptions (struct form): optional pruning and cloning, the
// distance pass, recursive critical-path linear clustering and iterative
// cluster merging, finishing with an executable plan.
func compile(g *Graph, opts Options) (*Program, error) {
	start := time.Now()
	if opts.CostModel == nil {
		opts.CostModel = cost.DefaultModel()
	}
	work := g.Clone()
	p := &Program{Graph: work, opts: opts}
	if opts.Prune {
		pr, err := passes.Prune(work)
		if err != nil {
			return nil, fmt.Errorf("ramiel: prune: %w", err)
		}
		p.PruneReport = pr
	}
	if !opts.DisableFusion {
		// Operator fusion (BN folding, writeback epilogues, elementwise
		// chains) runs after pruning and before clustering, so fused chains
		// schedule as single units and the folded weights are what the
		// prepack pass below packs.
		fr, err := passes.Fuse(work)
		if err != nil {
			return nil, fmt.Errorf("ramiel: fuse: %w", err)
		}
		p.FusionReport = fr
	}
	if opts.Clone {
		co := passes.DefaultCloneOptions()
		if opts.CloneOptions != nil {
			co = *opts.CloneOptions
		}
		cr, err := passes.CloneTasks(work, opts.CostModel, co)
		if err != nil {
			return nil, fmt.Errorf("ramiel: clone: %w", err)
		}
		p.CloneReport = cr
	}
	cl, err := core.LinearCluster(work, opts.CostModel)
	if err != nil {
		return nil, fmt.Errorf("ramiel: clustering: %w", err)
	}
	if !opts.DisableMerge {
		cl.MergeClusters()
	}
	p.Clustering = cl
	lanes := make([][]*graph.Node, len(cl.Clusters))
	for i, c := range cl.Clusters {
		lanes[i] = c.Nodes
	}
	plan, err := exec.NewPlan(work, lanes)
	if err != nil {
		return nil, fmt.Errorf("ramiel: planning: %w", err)
	}
	p.Plan = plan
	if opts.EagerMemPlan {
		plan.MemoryPlan()
	}
	// Pack constant GEMM/Conv weights once, now, so no Session.Run ever
	// repacks them (the prepack pass; CompileTime includes it).
	plan.PrepackWeights()
	p.CompileTime = time.Since(start)
	return p, nil
}

// NumClusters returns the plan's lane count.
func (p *Program) NumClusters() int { return len(p.Plan.Lanes) }

// Run executes the program in parallel (one goroutine per cluster) on the
// plain heap path, with no cancellation.
//
// Deprecated: use a Session — p.NewSession(WithoutArena()) followed by
// Session.Run(ctx, feeds) — which adds context cancellation and up-front
// feed validation. Run remains as a thin one-shot-session wrapper and is
// output-equivalent; it stays safe for concurrent calls on one Program
// (each call runs its own throwaway session). One behavior tightening
// rides along: like Session.Run, the wrappers now validate feeds up front
// (Program.ValidateFeeds), so feeds with unknown names — previously
// silently ignored — are rejected with a clear error, matching the HTTP
// serving layer's long-standing contract.
func (p *Program) Run(feeds Env) (Env, error) {
	return p.NewSession(WithoutArena()).Run(context.Background(), feeds)
}

// RunArena executes the program with arena-backed tensor memory: kernel
// outputs are allocated from a, and every intermediate is recycled into a
// the moment its last consumer finishes, per the program's static memory
// plan (internal/memplan). Graph outputs escape to the caller and are never
// recycled. Concurrent RunArena calls on one Program are safe as long as
// each passes its own arena; reusing an arena across sequential runs is
// what makes steady-state serving allocation-free for intermediates.
//
// Deprecated: use a Session — p.NewSession(WithArena(a)) or the default
// session-owned arena — and Session.Run(ctx, feeds).
func (p *Program) RunArena(feeds Env, a *Arena) (Env, error) {
	return p.NewSession(WithArena(a)).Run(context.Background(), feeds)
}

// RunProfiledArena is RunArena plus the per-lane busy/slack profile.
//
// Deprecated: use a Session with WithArena(a) and WithProfiling, then
// Session.Profile after Session.Run.
func (p *Program) RunProfiledArena(feeds Env, a *Arena) (Env, *Profile, error) {
	s := p.NewSession(WithArena(a), WithProfiling())
	out, err := s.Run(context.Background(), feeds)
	return out, s.Profile(), err
}

// MemoryPlan returns the program's static memory plan: per-value liveness,
// reuse slots, and (via Estimate with exec.ValueSizes) peak-memory
// forecasts.
func (p *Program) MemoryPlan() *memplan.Plan { return p.Plan.MemoryPlan() }

// MemoryEstimate forecasts the program's peak arena working set for one
// run: PeakLiveBytes (simultaneously-live intermediates under the static
// reuse plan) plus ScratchBytes (the largest single-kernel transient, e.g.
// an im2col patch matrix). Tensor shapes are not statically inferable, so
// the sizes come from one deterministic sequential sizing run — the first
// call costs about one sequential inference; the result is memoized.
// Serving layers use it for memory-feasibility admission, computing it off
// the request path.
func (p *Program) MemoryEstimate() (memplan.Estimate, error) {
	p.memEstOnce.Do(func() {
		mp := p.Plan.MemoryPlan()
		if mp == nil {
			p.memEstErr = fmt.Errorf("ramiel: graph defies memory analysis")
			return
		}
		mm, err := exec.MeasureCostsCtx(context.Background(), p.Graph, RandomInputs(p.Graph, 1), 1, 0)
		if err != nil {
			p.memEstErr = fmt.Errorf("ramiel: memory sizing run: %w", err)
			return
		}
		p.memEst = mp.EstimateWithScratch(mm.ValueNumel, mm.ScratchNumel)
	})
	return p.memEst, p.memEstErr
}

// PrepackedWeights reports the compile-time weight prepacking: how many
// GEMM-shaped nodes had constant operands packed into kernel panel layout
// at Compile time, and the packed bytes every run now shares.
func (p *Program) PrepackedWeights() (nodes int, bytes int64) {
	return p.Plan.PrepackWeights()
}

// OpTotals reports the program's live per-op execution totals — kernel
// invocations and cumulative time per operator type, accumulated across
// every run of the program since it was compiled, sorted by cumulative
// time descending. Empty until the program has run. This is the measured
// counterpart of the static cost model: it shows where execution time
// actually goes on this host.
func (p *Program) OpTotals() []OpTotal { return p.Plan.OpTotals() }

// EnableTimeline attaches the execution-timeline flight recorder to the
// program: one run in `every` is sampled into timestamped per-op spans
// (with cross-lane send/receive wait attribution), retained in a ring of
// the most recent `ring` sampled runs. Sampling off (never enabled) adds
// zero allocations and one atomic load to each run; sampled runs pay for
// their span storage. Returns the recorder for direct inspection.
func (p *Program) EnableTimeline(every, ring int) *Timeline {
	return p.Plan.EnableTimeline(every, ring)
}

// Timeline returns the program's attached flight recorder, nil when
// recording was never enabled.
func (p *Program) Timeline() *Timeline { return p.Plan.Timeline() }

// LastTimeline returns the most recent sampled run's timeline, nil when
// recording is disabled or no run has been sampled yet. Export it with
// RunTimeline.ChromeTrace (Perfetto/chrome://tracing-loadable JSON).
func (p *Program) LastTimeline() *RunTimeline { return p.Plan.LastTimeline() }

// Calibrate compares the program's compile-time cost model against its live
// measured per-op durations (the counters behind OpTotals): a per-op ratio
// table, the rank correlation between static and measured node costs, the
// worst-diverging ops, and a MeasuredModel snapshot for profile-guided
// recompilation. Nil until the program has run.
func (p *Program) Calibrate() *Calibration {
	return p.Plan.Calibrate(p.costModel())
}

// CriticalPathFromTimeline recovers the measured critical path of one
// sampled run — the chain of kernels and cross-lane waits that bounded its
// wall time — and sets it against the static cost model's predicted
// critical path over the same graph.
func (p *Program) CriticalPathFromTimeline(r *RunTimeline) (*CriticalPathReport, error) {
	return p.Plan.CriticalPathFromTimeline(r, p.costModel())
}

// costModel resolves the model the program was compiled under (falling back
// to the paper's default weights — hyperclustered programs carry no
// clustering and therefore no model reference).
func (p *Program) costModel() cost.Model {
	if p.Clustering != nil && p.Clustering.Model != nil {
		return p.Clustering.Model
	}
	if p.opts.CostModel != nil {
		return p.opts.CostModel
	}
	return cost.DefaultModel()
}

// RunProfiled is Run plus the per-lane busy/slack profile.
//
// Deprecated: use a Session with WithoutArena and WithProfiling, then
// Session.Profile after Session.Run.
func (p *Program) RunProfiled(feeds Env) (Env, *Profile, error) {
	s := p.NewSession(WithoutArena(), WithProfiling())
	out, err := s.Run(context.Background(), feeds)
	return out, s.Profile(), err
}

// RunSequential executes the program's graph on one goroutine — the
// baseline every speedup in the paper is measured against.
func (p *Program) RunSequential(feeds Env) (Env, error) {
	return exec.RunSequential(p.Graph, feeds)
}

// Metrics computes the potential-parallelism factors of Table I for the
// program's (optimized) graph.
func (p *Program) Metrics() (Metrics, error) {
	m := p.Clustering.Model
	if m == nil {
		m = cost.DefaultModel()
	}
	return cost.ComputeMetrics(p.Graph, m)
}

// Simulate computes the deterministic makespan of the plan under the
// static cost model.
func (p *Program) Simulate() (SimResult, error) {
	m := cost.Model(nil)
	if p.Clustering != nil {
		m = p.Clustering.Model
	}
	if m == nil {
		m = cost.DefaultModel()
	}
	return exec.Simulate(p.Plan, m)
}

// CodegenOptions configures GenerateGo.
type CodegenOptions = codegen.Options

// GenerateGo renders the program as readable parallel Go source: one
// function per cluster with explicit queue Send/Recv messaging, plus the
// sequential reference version (Section IV, Algorithm 4). Unless the
// caller supplies a model path, the generated main() reproduces this
// program's environment via CompiledEnv with the options the program was
// compiled with, so initializers materialized by optimization passes
// (folded constants, fused BatchNorm weights) resolve at run time.
func (p *Program) GenerateGo(opts CodegenOptions) (string, error) {
	if opts.ModelPath == "" && opts.CompileOptsExpr == "" {
		opts.CompileOptsExpr = optionsExpr(p.opts)
	}
	return codegen.Generate(p.Graph, p.Plan.Lanes, opts)
}

// optionsExpr renders the pass-relevant compile options as a Go expression
// for generated code. The cost model is omitted (it steers clustering, not
// the graph rewrites that create value names) and CloneOptions are spelled
// out field by field.
func optionsExpr(o Options) string {
	expr := fmt.Sprintf("ramiel.Options{Prune: %t, Clone: %t, DisableMerge: %t, DisableFusion: %t",
		o.Prune, o.Clone, o.DisableMerge, o.DisableFusion)
	if o.CloneOptions != nil {
		co := *o.CloneOptions
		expr += fmt.Sprintf(", CloneOptions: &ramiel.CloneOptions{MaxConeCost: %v, MaxConeNodes: %d, MaxFanout: %d, TopFraction: %v, MaxClones: %d}",
			co.MaxConeCost, co.MaxConeNodes, co.MaxFanout, co.TopFraction, co.MaxClones)
	}
	return expr + "}"
}

// Hypercluster builds a batch>1 program from this one (Section III-E):
// the graph is replicated per sample and each cluster's operations are
// interleaved across samples; switched additionally rotates cluster
// assignments per sample for load balance (Fig. 9).
func (p *Program) Hypercluster(batch int, switched bool) (*Program, error) {
	if p.Clustering == nil {
		return nil, fmt.Errorf("ramiel: program has no clustering to hypercluster")
	}
	var (
		h   *hyper.Hyperclustering
		err error
	)
	if switched {
		h, err = hyper.BuildSwitched(p.Clustering, batch)
	} else {
		h, err = hyper.Build(p.Clustering, batch)
	}
	if err != nil {
		return nil, err
	}
	plan, err := exec.NewPlanOrdered(h.Graph, h.Lanes)
	if err != nil {
		// Interleavings that would deadlock fall back to a topologically
		// re-sorted plan with the same lane membership.
		plan, err = exec.NewPlan(h.Graph, h.Lanes)
		if err != nil {
			return nil, err
		}
	}
	plan.PrepackWeights() // replicated weights pack once here, not per run
	return &Program{
		Graph:       h.Graph,
		Plan:        plan,
		CompileTime: p.CompileTime,
		opts:        p.opts,
	}, nil
}

// Inputs returns the program graph's declared inputs. For a hyperclustered
// program these are the per-sample replicas (SampleValueName of the batch-1
// inputs).
func (p *Program) Inputs() []ValueInfo { return p.Graph.Inputs }

// Outputs returns the program graph's declared outputs.
func (p *Program) Outputs() []ValueInfo { return p.Graph.Outputs }

// SampleValueName tags a value name with a batch-sample index, following
// the hyperclustering replication convention (Section III-E): sample s of
// graph input "in" is fed to a hyperclustered program as
// SampleValueName("in", s). Serving layers use this to assemble coalesced
// micro-batch feeds and split the outputs back per request.
func SampleValueName(name string, sample int) string {
	return hyper.SampleName(name, sample)
}

// SampleIndexOf recovers the sample index of a replicated value name, or
// -1 when the name carries no sample suffix.
func SampleIndexOf(name string) int { return hyper.SampleOf(name) }

// BaseValueName strips the sample suffix from a replicated value name,
// returning the batch-1 name; names without a suffix pass through.
func BaseValueName(name string) string { return hyper.BaseName(name) }

// Call invokes a registered operator kernel by its ONNX-style name; the
// generated parallel code is written in terms of Call.
func Call(op string, in []*Tensor, attrs Attrs) ([]*Tensor, error) {
	k, err := ops.Lookup(op)
	if err != nil {
		return nil, err
	}
	return k(in, attrs)
}

// SupportedOps lists every registered operator type.
func SupportedOps() []string { return ops.Names() }
