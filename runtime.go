package ramiel

import (
	"sync"

	"repro/internal/exec"
	"repro/internal/models"
	"repro/internal/onnx"
)

// Queues is the message-passing runtime behind the generated parallel
// code: the Go counterpart of the paper's bi-directional multiprocessing
// queues. Each (value, destination-lane) pair gets its own buffered
// channel, created on demand, so sends never block and receives block only
// until the producing cluster has sent.
type Queues struct {
	mu        sync.Mutex
	chans     map[queueKey]chan *Tensor
	published Env
	lanes     int
}

// queueKey identifies one (value, destination-lane) channel. A comparable
// struct key keeps the per-message lookup allocation-free, unlike the
// fmt.Sprintf string key it replaced, which showed up in profiles of
// generated-code runs.
type queueKey struct {
	value string
	lane  int
}

// NewQueues creates the runtime for a program with the given lane count.
func NewQueues(lanes int) *Queues {
	return &Queues{
		chans:     map[queueKey]chan *Tensor{},
		published: Env{},
		lanes:     lanes,
	}
}

func (q *Queues) channel(value string, lane int) chan *Tensor {
	key := queueKey{value, lane}
	q.mu.Lock()
	defer q.mu.Unlock()
	ch, ok := q.chans[key]
	if !ok {
		ch = make(chan *Tensor, 1)
		q.chans[key] = ch
	}
	return ch
}

// Send delivers a tensor produced in one cluster to the lane `to`
// (Algorithm 4's queue.put). It never blocks: each cross-cluster value is
// sent at most once per destination.
func (q *Queues) Send(value string, to int, t *Tensor) {
	q.channel(value, to) <- t
}

// Recv blocks until the named value arrives at lane `at` (queue.get).
func (q *Queues) Recv(value string, at int) *Tensor {
	return <-q.channel(value, at)
}

// Publish records a graph output.
func (q *Queues) Publish(name string, t *Tensor) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.published[name] = t
}

// Published returns the graph outputs recorded so far.
func (q *Queues) Published() Env {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(Env, len(q.published))
	for k, v := range q.published {
		out[k] = v
	}
	return out
}

// LoadEnv reads a model file and returns an execution environment holding
// its initializers plus deterministic random feeds for the graph inputs —
// what a generated main() needs to run.
func LoadEnv(modelPath string) (Env, error) {
	g, err := onnx.LoadGraph(modelPath)
	if err != nil {
		return nil, err
	}
	return buildEnv(g), nil
}

// SyntheticEnv rebuilds the named zoo model (same deterministic weights as
// BuildModel with the default config) and returns its environment. It
// panics on unknown names — generated code bakes the name in at generation
// time, so a failure is a programming error.
func SyntheticEnv(modelName string) Env {
	g := models.MustBuild(modelName, models.Config{})
	return buildEnv(g)
}

// CompiledEnv rebuilds the named zoo model under cfg, replays the compile
// pipeline under opts, and returns the *optimized* graph's environment.
// Generated parallel code is emitted from the optimized graph, whose
// optimization passes (constant folding, BatchNorm fusion) materialize
// initializers that do not exist in the base model — SyntheticEnv cannot
// supply those, so generated mains bind their environment through this
// instead, with the model config they were generated at (models with
// baked reshape constants need matching spatial dims). The passes are
// deterministic, so the replay reproduces exactly the value names the
// generated code references. Panics on unknown model names or compile
// failure, which for baked-in generated code is a programming error.
func CompiledEnv(modelName string, cfg ModelConfig, opts Options) Env {
	g := models.MustBuild(modelName, cfg)
	prog, err := CompileWithOptions(g, opts)
	if err != nil {
		panic("ramiel: CompiledEnv: " + err.Error())
	}
	return buildEnv(prog.Graph)
}

func buildEnv(g *Graph) Env {
	env := Env{}
	for name, t := range g.Initializers {
		env[name] = t
	}
	for name, t := range models.RandomInputs(g, 1) {
		env[name] = t
	}
	return env
}

// RunSequentialGraph executes a graph directly without compiling a plan;
// convenience for tools and tests.
func RunSequentialGraph(g *Graph, feeds Env) (Env, error) {
	return exec.RunSequential(g, feeds)
}
